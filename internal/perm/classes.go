package perm

import "repro/internal/gf2"

// Class identifies the most specific permutation class a BMMC permutation
// falls into for a given machine geometry. The classes are nested:
// Identity ⊂ MRC ⊂ MLD ⊂ BMMC, with BPC orthogonal (a BPC permutation may
// or may not be MRC/MLD).
type Class int

const (
	// ClassIdentity is the identity permutation (zero I/Os).
	ClassIdentity Class = iota
	// ClassMRC is memory-rearrangement/complement: one pass, striped reads
	// and striped writes.
	ClassMRC
	// ClassMLD is memoryload-dispersal: one pass, striped reads and
	// independent writes.
	ClassMLD
	// ClassBMMC is the general case, requiring the factoring algorithm.
	ClassBMMC
	// ClassInvMLD marks a permutation whose inverse is MLD: one pass with
	// independent reads and striped writes (the Section 7 extension).
	// Classify never returns it — it refines ClassBMMC and is used as a
	// pass kind by the plan layer and the engine dispatch.
	ClassInvMLD
)

func (c Class) String() string {
	switch c {
	case ClassIdentity:
		return "identity"
	case ClassMRC:
		return "MRC"
	case ClassMLD:
		return "MLD"
	case ClassInvMLD:
		return "inverse-MLD"
	default:
		return "BMMC"
	}
}

// IsBPC reports whether p is a bit-permute/complement permutation: its
// characteristic matrix is a permutation matrix.
func (p BMMC) IsBPC() bool { return p.A.IsPermutation() }

// IsMRC reports whether p is memory-rearrangement/complement for memory
// size 2^m: the lower-left (n-m) x m submatrix is zero (for a nonsingular
// block-upper-triangular matrix the leading and trailing blocks are then
// automatically nonsingular, but we check them anyway so the predicate is
// meaningful on matrices that bypassed New).
func (p BMMC) IsMRC(m int) bool {
	n := p.Bits()
	if m < 0 || m > n {
		return false
	}
	if !p.A.Submatrix(m, n, 0, m).IsZero() {
		return false
	}
	if !p.A.Submatrix(0, m, 0, m).IsNonsingular() {
		return false
	}
	return m == n || p.A.Submatrix(m, n, m, n).IsNonsingular()
}

// IsMLD reports whether p is a memoryload-dispersal permutation for block
// size 2^b and memory size 2^m: the kernel condition (4) holds,
// ker kappa ⊆ ker lambda, where kappa = A_{b..m-1,0..m-1} and
// lambda = A_{m..n-1,0..m-1}.
func (p BMMC) IsMLD(b, m int) bool {
	n := p.Bits()
	if b < 0 || b > m || m > n {
		return false
	}
	kappa := p.A.Submatrix(b, m, 0, m)
	lambda := p.A.Submatrix(m, n, 0, m)
	return gf2.KernelContains(kappa, lambda)
}

// CheckMLDKernelCondition runs the explicit two-step procedure of Section 6
// for verifying the kernel condition: find a basis of ker kappa, reject if
// it has more than b vectors (rank kappa must be m-b), and verify lambda
// maps every basis vector to zero. It returns the same answer as IsMLD for
// nonsingular matrices but mirrors the paper's runtime check.
func (p BMMC) CheckMLDKernelCondition(b, m int) bool {
	n := p.Bits()
	if b < 0 || b > m || m > n {
		return false
	}
	kappa := p.A.Submatrix(b, m, 0, m)
	lambda := p.A.Submatrix(m, n, 0, m)
	basis := kappa.KernelBasis()
	if len(basis) > b {
		// dim(ker kappa) must be exactly b for an MLD matrix (Lemma 12).
		return false
	}
	for _, x := range basis {
		if !lambda.InKernel(x) {
			return false
		}
	}
	return true
}

// OnePassClass returns the cheapest class that executes p in a single pass
// for block size 2^b and memory size 2^m: identity (zero I/Os), MRC, MLD,
// or inverse-MLD (the Section 7 extension). If p needs the factoring
// algorithm it returns (ClassBMMC, false). The plan-fusion layer uses this
// predicate to decide whether a composition of factored passes is still
// one-pass executable.
func (p BMMC) OnePassClass(b, m int) (Class, bool) {
	switch {
	case p.IsIdentity():
		return ClassIdentity, true
	case p.IsMRC(m):
		return ClassMRC, true
	case p.IsMLD(b, m):
		return ClassMLD, true
	case p.Inverse().IsMLD(b, m):
		return ClassInvMLD, true
	}
	return ClassBMMC, false
}

// Classify returns the most specific class of p for block size 2^b and
// memory size 2^m, using the containments proved in Section 3 (every MRC
// permutation is MLD; every MLD permutation is BMMC).
func (p BMMC) Classify(b, m int) Class {
	switch {
	case p.IsIdentity():
		return ClassIdentity
	case p.IsMRC(m):
		return ClassMRC
	case p.IsMLD(b, m):
		return ClassMLD
	default:
		return ClassBMMC
	}
}

// CrossRank returns the k-cross-rank of eq. (2): rank A_{k..n-1, 0..k-1},
// which for permutation matrices equals rank A_{0..k-1, k..n-1}.
func (p BMMC) CrossRank(k int) int {
	return p.A.Submatrix(k, p.Bits(), 0, k).Rank()
}

// MaxCrossRank returns kappa(A) of eq. (3): the maximum of the b- and
// m-cross-ranks, the quantity governing the BPC algorithm of [4].
func (p BMMC) MaxCrossRank(b, m int) int {
	kb, km := p.CrossRank(b), p.CrossRank(m)
	if kb > km {
		return kb
	}
	return km
}
