package perm

import (
	"math/rand"
	"testing"

	"repro/internal/gf2"
)

// randomMLD builds a random MLD permutation as (erasure form) * (random MRC):
// by Theorem 17 the product of an MLD and an MRC matrix is MLD, and the
// erasure form is MLD by construction (Section 4).
func randomMLD(rng *rand.Rand, n, b, m int) BMMC {
	e := gf2.Identity(n)
	e.SetSubmatrix(m, b, gf2.RandomMatrix(rng, n-m, m-b))
	mrc := gf2.RandomMRC(rng, n, m)
	return MustNew(e.Mul(mrc), gf2.RandomVec(rng, n))
}

func TestIsBPC(t *testing.T) {
	if !BitReversal(7).IsBPC() {
		t.Error("bit reversal not BPC")
	}
	if !Transpose(3, 4).IsBPC() {
		t.Error("transpose not BPC")
	}
	if !VectorReversal(5).IsBPC() {
		t.Error("vector reversal not BPC")
	}
	if GrayCode(5).IsBPC() {
		t.Error("Gray code reported BPC")
	}
}

func TestIsMRC(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		m := 1 + rng.Intn(n-1)
		p := MustNew(gf2.RandomMRC(rng, n, m), gf2.RandomVec(rng, n))
		if !p.IsMRC(m) {
			t.Fatalf("RandomMRC not recognized (n=%d m=%d)", n, m)
		}
	}
	// Gray code is unit upper triangular: MRC for every m.
	g := GrayCode(8)
	for m := 1; m < 8; m++ {
		if !g.IsMRC(m) {
			t.Errorf("Gray code not MRC at m=%d", m)
		}
	}
	gi := GrayCodeInverse(8)
	for m := 1; m < 8; m++ {
		if !gi.IsMRC(m) {
			t.Errorf("inverse Gray code not MRC at m=%d", m)
		}
	}
	// Bit reversal moves low bits high: not MRC for m < n.
	if BitReversal(8).IsMRC(4) {
		t.Error("bit reversal reported MRC")
	}
}

func TestIsMLDAndKernelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(n-2)
		b := 1 + rng.Intn(m-1)
		p := randomMLD(rng, n, b, m)
		if !p.IsMLD(b, m) {
			t.Fatalf("constructed MLD not recognized (n=%d b=%d m=%d)\n%v", n, b, m, p.A)
		}
		if !p.CheckMLDKernelCondition(b, m) {
			t.Fatalf("Section 6 kernel check rejects constructed MLD (n=%d b=%d m=%d)", n, b, m)
		}
	}
	// The two predicates must agree on arbitrary nonsingular matrices.
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(8)
		m := 2 + rng.Intn(n-2)
		b := 1 + rng.Intn(m-1)
		p := MustNew(gf2.RandomNonsingular(rng, n), 0)
		if p.IsMLD(b, m) != p.CheckMLDKernelCondition(b, m) {
			t.Fatalf("IsMLD and CheckMLDKernelCondition disagree (n=%d b=%d m=%d)\n%v", n, b, m, p.A)
		}
	}
}

// TestEveryMRCIsMLD verifies the containment noted at the end of Section 3.
func TestEveryMRCIsMLD(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(n-2)
		b := 1 + rng.Intn(m-1)
		p := MustNew(gf2.RandomMRC(rng, n, m), 0)
		if !p.IsMLD(b, m) {
			t.Fatalf("MRC permutation not MLD (n=%d b=%d m=%d)", n, b, m)
		}
	}
}

// TestTheorem18MRCClosure: MRC permutations are closed under composition
// and inverse.
func TestTheorem18MRCClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		m := 1 + rng.Intn(n-1)
		p := MustNew(gf2.RandomMRC(rng, n, m), gf2.RandomVec(rng, n))
		q := MustNew(gf2.RandomMRC(rng, n, m), gf2.RandomVec(rng, n))
		if !p.Inverse().IsMRC(m) {
			t.Fatalf("inverse of MRC not MRC (n=%d m=%d)", n, m)
		}
		if !p.Compose(q).IsMRC(m) {
			t.Fatalf("composition of MRCs not MRC (n=%d m=%d)", n, m)
		}
	}
}

// TestTheorem17MLDTimesMRC: the product (MLD matrix)*(MRC matrix)
// characterizes an MLD permutation.
func TestTheorem17MLDTimesMRC(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(n-2)
		b := 1 + rng.Intn(m-1)
		y := randomMLD(rng, n, b, m)
		x := MustNew(gf2.RandomMRC(rng, n, m), 0)
		prod := BMMC{A: y.A.Mul(x.A)}
		if !prod.IsMLD(b, m) {
			t.Fatalf("MLD*MRC not MLD (n=%d b=%d m=%d)", n, b, m)
		}
	}
}

// TestSection3Counterexample reproduces the paper's explicit example showing
// MRC*MLD need not be MLD, with b = m-b = n-m = 2.
func TestSection3Counterexample(t *testing.T) {
	const b, mb, nm = 2, 2, 2
	n, m := b+mb+nm, b+mb
	// MRC factor: [[0 I 0],[I 0 0],[0 0 I]] blocks of size 2.
	mrc := gf2.New(n, n)
	mrc.SetSubmatrix(0, b, gf2.Identity(mb))
	mrc.SetSubmatrix(b, 0, gf2.Identity(b))
	mrc.SetSubmatrix(m, m, gf2.Identity(nm))
	// MLD factor: [[I 0 0],[0 I 0],[0 I I]].
	mld := gf2.Identity(n)
	mld.SetSubmatrix(m, b, gf2.Identity(mb))

	pMRC := MustNew(mrc, 0)
	pMLD := MustNew(mld, 0)
	if !pMRC.IsMRC(m) {
		t.Fatal("MRC factor not MRC")
	}
	if !pMLD.IsMLD(b, m) {
		t.Fatal("MLD factor not MLD")
	}
	prod := BMMC{A: mrc.Mul(mld)}
	if prod.IsMLD(b, m) {
		t.Fatal("paper's counterexample product reported MLD")
	}
}

// TestLemma16RankBound: for an MLD matrix, rank of the lower-left
// (n-m) x m submatrix is at most m-b.
func TestLemma16RankBound(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(n-2)
		b := 1 + rng.Intn(m-1)
		p := randomMLD(rng, n, b, m)
		lambda := p.A.Submatrix(m, n, 0, m)
		if lambda.Rank() > m-b {
			t.Fatalf("MLD lambda rank %d > m-b = %d", lambda.Rank(), m-b)
		}
	}
}

// TestLemma12LeadingBlock: the kernel condition implies the leading m x m
// submatrix of an MLD matrix is nonsingular.
func TestLemma12LeadingBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(n-2)
		b := 1 + rng.Intn(m-1)
		p := randomMLD(rng, n, b, m)
		if !p.A.Submatrix(0, m, 0, m).IsNonsingular() {
			t.Fatalf("MLD leading block singular (n=%d b=%d m=%d)", n, b, m)
		}
	}
}

func TestClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	n, b, m := 10, 3, 7
	if got := Identity(n).Classify(b, m); got != ClassIdentity {
		t.Errorf("identity classified %v", got)
	}
	if got := GrayCode(n).Classify(b, m); got != ClassMRC {
		t.Errorf("Gray code classified %v", got)
	}
	mld := randomMLD(rng, n, b, m)
	if !mld.IsMRC(m) {
		if got := mld.Classify(b, m); got != ClassMLD {
			t.Errorf("MLD classified %v", got)
		}
	}
	if got := BitReversal(n).Classify(b, m); got != ClassBMMC {
		t.Errorf("bit reversal classified %v", got)
	}
	for _, c := range []Class{ClassIdentity, ClassMRC, ClassMLD, ClassBMMC} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestCrossRank(t *testing.T) {
	// For a BPC matrix, the k-cross-rank counts target bits >= k drawn from
	// source bits < k. Bit reversal on 8 bits at k=4 moves all 4 low bits
	// high: cross-rank 4.
	p := BitReversal(8)
	if got := p.CrossRank(4); got != 4 {
		t.Errorf("bit-reversal 4-cross-rank = %d, want 4", got)
	}
	if got := Identity(8).CrossRank(4); got != 0 {
		t.Errorf("identity cross-rank = %d", got)
	}
	// Transpose(4,4) = rotation by 4 on 8 bits: every low bit moves high.
	if got := Transpose(4, 4).CrossRank(4); got != 4 {
		t.Errorf("transpose cross-rank = %d", got)
	}
	// Symmetry of eq. (2) for permutation matrices.
	rng := rand.New(rand.NewSource(58))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(12)
		k := 1 + rng.Intn(n-1)
		a := gf2.RandomPermutationMatrix(rng, n)
		p := BMMC{A: a}
		upper := a.Submatrix(0, k, k, n).Rank()
		if p.CrossRank(k) != upper {
			t.Fatalf("cross-rank asymmetry for permutation matrix at k=%d", k)
		}
	}
	if MaxOf := (BMMC{A: gf2.RandomPermutationMatrix(rng, 10)}).MaxCrossRank(3, 7); MaxOf < 0 {
		t.Error("negative cross rank")
	}
}
