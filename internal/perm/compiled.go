package perm

import (
	"math/bits"

	"repro/internal/gf2"
)

// Compiled is a table-driven form of a BMMC permutation. Apply on the
// Matrix form costs one AND+popcount per matrix row; the compiled form
// splits the source address into bytes and XORs eight precomputed partial
// products, independent of n. Engines compile once per pass and then map
// millions of addresses — or, when the permutation fixes its low address
// bits (RunBits > 0), one run of addresses per Apply plus a block copy.
type Compiled struct {
	tab     [8][256]uint64 // tab[k][v] = A * (v << 8k) over GF(2)
	c       uint64
	runBits int // lg of the largest aligned source run moved contiguously
}

// Compile precomputes the byte-lookup tables and the run width for p.
func (p BMMC) Compile() *Compiled {
	ca := &Compiled{c: uint64(p.C), runBits: p.ContiguousRunBits()}
	n := p.Bits()
	// Column images: colImage[j] = A * e_j.
	var colImage [gf2.MaxDim]uint64
	for j := 0; j < n; j++ {
		colImage[j] = uint64(p.A.MulVec(gf2.Vec(1) << uint(j)))
	}
	for k := 0; k < 8; k++ {
		base := 8 * k
		if base >= n {
			break // higher bytes are always zero for n-bit addresses
		}
		for v := 1; v < 256; v++ {
			// One new bit relative to v with that bit cleared.
			low := v & (v - 1)
			bit := base + bits.TrailingZeros8(uint8(v^low))
			img := uint64(0)
			if bit < n {
				img = colImage[bit]
			}
			ca.tab[k][v] = ca.tab[k][low] ^ img
		}
	}
	return ca
}

// RunBits returns the largest k such that the permutation moves aligned
// runs of 2^k consecutive source addresses to 2^k consecutive target
// addresses (see BMMC.ContiguousRunBits). The run-coalescing scatter
// kernels replace 2^k Apply calls and record moves with one Apply and one
// copy per run.
func (ca *Compiled) RunBits() int { return ca.runBits }

// Apply maps a source address to its target address, equal to
// BMMC.Apply for addresses below 2^n.
func (ca *Compiled) Apply(x uint64) uint64 {
	return ca.tab[0][x&0xff] ^
		ca.tab[1][x>>8&0xff] ^
		ca.tab[2][x>>16&0xff] ^
		ca.tab[3][x>>24&0xff] ^
		ca.tab[4][x>>32&0xff] ^
		ca.tab[5][x>>40&0xff] ^
		ca.tab[6][x>>48&0xff] ^
		ca.tab[7][x>>56&0xff] ^
		ca.c
}
