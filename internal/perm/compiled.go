package perm

import "repro/internal/gf2"

// Compiled is a table-driven form of a BMMC permutation. Apply on the
// Matrix form costs one AND+popcount per matrix row; the compiled form
// splits the source address into bytes and XORs eight precomputed partial
// products, independent of n. Engines compile once per pass and then map
// millions of addresses.
type Compiled struct {
	tab [8][256]uint64 // tab[k][v] = A * (v << 8k) over GF(2)
	c   uint64
}

// Compile precomputes the byte-lookup tables for p.
func (p BMMC) Compile() *Compiled {
	ca := &Compiled{c: uint64(p.C)}
	n := p.Bits()
	// Column images: colImage[j] = A * e_j.
	var colImage [gf2.MaxDim]uint64
	for j := 0; j < n; j++ {
		colImage[j] = uint64(p.A.MulVec(gf2.Vec(1) << uint(j)))
	}
	for k := 0; k < 8; k++ {
		base := 8 * k
		if base >= n {
			break // higher bytes are always zero for n-bit addresses
		}
		for v := 1; v < 256; v++ {
			// One new bit relative to v with that bit cleared.
			low := v & (v - 1)
			bit := base + trailingZeros8(v^low)
			img := uint64(0)
			if bit < n {
				img = colImage[bit]
			}
			ca.tab[k][v] = ca.tab[k][low] ^ img
		}
	}
	return ca
}

// Apply maps a source address to its target address, equal to
// BMMC.Apply for addresses below 2^n.
func (ca *Compiled) Apply(x uint64) uint64 {
	return ca.tab[0][x&0xff] ^
		ca.tab[1][x>>8&0xff] ^
		ca.tab[2][x>>16&0xff] ^
		ca.tab[3][x>>24&0xff] ^
		ca.tab[4][x>>32&0xff] ^
		ca.tab[5][x>>40&0xff] ^
		ca.tab[6][x>>48&0xff] ^
		ca.tab[7][x>>56&0xff] ^
		ca.c
}

func trailingZeros8(v int) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}
