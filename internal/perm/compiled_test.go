package perm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf2"
)

// TestCompiledMatchesApply: the table-driven applier agrees with the
// matrix-vector form on every class of permutation and address width.
func TestCompiledMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(24)
		p := MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))
		ca := p.Compile()
		for i := 0; i < 500; i++ {
			x := rng.Uint64() & uint64(gf2.Mask(n))
			if ca.Apply(x) != p.Apply(x) {
				t.Fatalf("compiled(%d) = %d, want %d (n=%d)", x, ca.Apply(x), p.Apply(x), n)
			}
		}
	}
}

// TestCompiledWideAddresses exercises every byte table (n > 56).
func TestCompiledWideAddresses(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	n := 63
	p := MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))
	ca := p.Compile()
	f := func(xRaw uint64) bool {
		x := xRaw & uint64(gf2.Mask(n))
		return ca.Apply(x) == p.Apply(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for n := 1; n <= 12; n++ {
		p := MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))
		ca := p.Compile()
		for x := uint64(0); x < 1<<uint(n); x++ {
			if ca.Apply(x) != p.Apply(x) {
				t.Fatalf("n=%d x=%d: compiled %d, direct %d", n, x, ca.Apply(x), p.Apply(x))
			}
		}
	}
}

func TestEmbedPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 40; trial++ {
		k := 4 + rng.Intn(10)
		n := k + rng.Intn(8)
		b := 1 + rng.Intn(k-2)
		p := MustNew(gf2.RandomNonsingular(rng, k), gf2.RandomVec(rng, k))
		e, err := p.Embed(n)
		if err != nil {
			t.Fatal(err)
		}
		if !e.A.IsNonsingular() {
			t.Fatal("embedded matrix singular")
		}
		if e.RankGamma(b) != p.RankGamma(b) {
			t.Fatalf("rank gamma changed: %d -> %d", p.RankGamma(b), e.RankGamma(b))
		}
		// Low addresses map identically; high bits are fixed.
		for i := 0; i < 50; i++ {
			x := rng.Uint64() & uint64(gf2.Mask(k))
			hi := (rng.Uint64() & uint64(gf2.Mask(n))) &^ uint64(gf2.Mask(k))
			if e.Apply(x|hi) != p.Apply(x)|hi {
				t.Fatalf("embedding does not act segment-wise at %d", x|hi)
			}
		}
	}
	if _, err := Identity(8).Embed(4); err == nil {
		t.Error("shrinking embed accepted")
	}
	same, err := Identity(8).Embed(8)
	if err != nil || !same.IsIdentity() {
		t.Error("identity embed failed")
	}
}

func TestMorton(t *testing.T) {
	const lg = 3 // 8x8 matrix
	p := Morton(lg)
	if !p.IsBPC() {
		t.Fatal("Morton not BPC")
	}
	// Element (row, col) at row-major address row*8+col must land at the
	// interleaved Morton index.
	for row := uint64(0); row < 8; row++ {
		for col := uint64(0); col < 8; col++ {
			src := row<<lg | col
			var want uint64
			for t := 0; t < lg; t++ {
				want |= (col >> uint(t) & 1) << uint(2*t)
				want |= (row >> uint(t) & 1) << uint(2*t+1)
			}
			if got := p.Apply(src); got != want {
				t.Fatalf("morton(%d,%d): got %d, want %d", row, col, got, want)
			}
		}
	}
	inv := MortonInverse(lg)
	for x := uint64(0); x < 64; x++ {
		if inv.Apply(p.Apply(x)) != x {
			t.Fatalf("Morton inverse fails at %d", x)
		}
	}
}
