package perm

import (
	"fmt"

	"repro/internal/gf2"
)

// Embed lifts p to a larger address space of n bits by placing its
// characteristic matrix in the leading block and the identity in the
// trailing block:
//
//	A' = [ A 0 ]      c' = (c, 0...)
//	     [ 0 I ]
//
// The embedded permutation applies p to the low p.Bits() address bits and
// leaves the high bits fixed — it permutes within each 2^p.Bits()-record
// segment identically. Both rank gamma (for any b <= p.Bits()) and rank
// lambda are preserved, which makes Embed the right tool for scaling
// experiments that must hold the pass structure constant while N grows.
func (p BMMC) Embed(n int) (BMMC, error) {
	k := p.Bits()
	if n < k {
		return BMMC{}, fmt.Errorf("perm: cannot embed %d-bit permutation into %d bits", k, n)
	}
	if n == k {
		return p, nil
	}
	a := gf2.Identity(n)
	a.SetSubmatrix(0, 0, p.A)
	return BMMC{A: a, C: p.C}, nil
}

// Morton returns the BPC permutation converting a row-major 2^lg x 2^lg
// square matrix layout into Morton (Z-order) layout: target address bits
// interleave the row and column bits. With row-major source address
// x = (col bits 0..lg-1, row bits lg..2lg-1), the Morton address
// interleaves them as y_{2t} = col_t, y_{2t+1} = row_t.
func Morton(lg int) BMMC {
	n := 2 * lg
	a := gf2.New(n, n)
	for t := 0; t < lg; t++ {
		a.Set(2*t, t, 1)      // y_{2t}   = x_t       (column bit t)
		a.Set(2*t+1, lg+t, 1) // y_{2t+1} = x_{lg+t}  (row bit t)
	}
	return BMMC{A: a}
}

// MortonInverse returns the permutation converting Morton (Z-order) layout
// back to row-major layout.
func MortonInverse(lg int) BMMC {
	return Morton(lg).Inverse()
}
