package perm

import (
	"fmt"
	"strings"

	"repro/internal/gf2"
)

// Marshal renders the permutation in a line-oriented text format that
// Parse accepts:
//
//	bmmc n=<bits>
//	c=<n binary digits, component 0 leftmost>
//	<row 0: n binary digits, column 0 leftmost>
//	...
//	<row n-1>
//
// The format matches Matrix.String's digit order, so a matrix printed for
// diagnostics can be pasted into a file and parsed back.
func (p BMMC) Marshal() []byte {
	n := p.Bits()
	var sb strings.Builder
	fmt.Fprintf(&sb, "bmmc n=%d\n", n)
	sb.WriteString("c=")
	for i := 0; i < n; i++ {
		sb.WriteByte('0' + byte(p.C.Bit(i)))
	}
	sb.WriteByte('\n')
	sb.WriteString(p.A.String())
	sb.WriteByte('\n')
	return []byte(sb.String())
}

// Parse reads the Marshal format, validating shape and nonsingularity.
// Blank lines and lines starting with '#' are ignored.
func Parse(data []byte) (BMMC, error) {
	var lines []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return BMMC{}, fmt.Errorf("perm: empty input")
	}
	var n int
	if _, err := fmt.Sscanf(lines[0], "bmmc n=%d", &n); err != nil {
		return BMMC{}, fmt.Errorf("perm: bad header %q: %w", lines[0], err)
	}
	if n <= 0 || n > gf2.MaxDim {
		return BMMC{}, fmt.Errorf("perm: n = %d out of range", n)
	}
	if len(lines) != 2+n {
		return BMMC{}, fmt.Errorf("perm: expected complement plus %d rows, got %d lines", n, len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "c=") {
		return BMMC{}, fmt.Errorf("perm: missing complement line")
	}
	c, err := parseBits(strings.TrimPrefix(lines[1], "c="), n)
	if err != nil {
		return BMMC{}, fmt.Errorf("perm: complement: %w", err)
	}
	a := gf2.New(n, n)
	for i := 0; i < n; i++ {
		row, err := parseBits(lines[2+i], n)
		if err != nil {
			return BMMC{}, fmt.Errorf("perm: row %d: %w", i, err)
		}
		a.SetRow(i, row)
	}
	return New(a, c)
}

// parseBits reads n binary digits with component 0 leftmost.
func parseBits(s string, n int) (gf2.Vec, error) {
	if len(s) != n {
		return 0, fmt.Errorf("want %d digits, got %d", n, len(s))
	}
	var v gf2.Vec
	for i := 0; i < n; i++ {
		switch s[i] {
		case '0':
		case '1':
			v |= 1 << uint(i)
		default:
			return 0, fmt.Errorf("invalid digit %q", s[i])
		}
	}
	return v, nil
}
