package perm

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gf2"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(24)
		p := MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))
		back, err := Parse(p.Marshal())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !back.Equal(p) {
			t.Fatalf("roundtrip changed the permutation (n=%d)", n)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
# a Gray code on 3 bits
bmmc n=3

c=000
110
# middle row
011
001
`
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(GrayCode(3)) {
		t.Fatalf("parsed wrong matrix:\n%v", p.A)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"bad header", "hello n=3\nc=000\n100\n010\n001"},
		{"zero n", "bmmc n=0\nc=\n"},
		{"huge n", "bmmc n=99\nc=0\n"},
		{"missing rows", "bmmc n=3\nc=000\n100\n010"},
		{"missing complement", "bmmc n=2\n10\n01\n11"},
		{"bad digit", "bmmc n=2\nc=00\n1x\n01"},
		{"wrong row width", "bmmc n=2\nc=00\n100\n01"},
		{"singular", "bmmc n=2\nc=00\n11\n11"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMarshalHumanReadable(t *testing.T) {
	out := string(GrayCode(4).Marshal())
	for _, want := range []string{"bmmc n=4", "c=0000", "1100"} {
		if !strings.Contains(out, want) {
			t.Errorf("marshal output missing %q:\n%s", want, out)
		}
	}
}
