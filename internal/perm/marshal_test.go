package perm

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gf2"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(24)
		p := MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))
		back, err := Parse(p.Marshal())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !back.Equal(p) {
			t.Fatalf("roundtrip changed the permutation (n=%d)", n)
		}
	}
}

// TestMarshalAffineOffsets audits the marshal path for affine offsets:
// permutations whose complement vector is nonzero — including the all-ones
// complement of vector reversal and the top address bit set — must
// round-trip exactly at every width up to the 64-bit maximum. This is the
// format the bmmcd service accepts over its submit path, so losing a
// complement bit would silently permute to the wrong addresses.
func TestMarshalAffineOffsets(t *testing.T) {
	cases := []struct {
		name string
		p    BMMC
	}{
		{"vecrev-1", VectorReversal(1)},
		{"vecrev-12", VectorReversal(12)},
		{"vecrev-64", VectorReversal(64)},
		{"hypercube-low", Hypercube(12, 0xABC)},
		{"hypercube-top-bit", Hypercube(12, 1<<11)},
		{"hypercube-64-top-bit", Hypercube(64, 1<<63)},
		{"gray-offset", MustNew(GrayCode(8).A, gf2.Mask(8))},
	}
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 64; n += 9 {
		cases = append(cases, struct {
			name string
			p    BMMC
		}{"random-offset", MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))})
	}
	for _, tc := range cases {
		back, err := Parse(tc.p.Marshal())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !back.Equal(tc.p) {
			t.Fatalf("%s: round trip changed the permutation:\nc  = %b\nc' = %b", tc.name, uint64(tc.p.C), uint64(back.C))
		}
		// The offset must survive functionally, not just structurally.
		for _, x := range []uint64{0, 1, tc.p.Size() - 1} {
			if back.Apply(x) != tc.p.Apply(x) {
				t.Fatalf("%s: Apply(%d) differs after round trip", tc.name, x)
			}
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
# a Gray code on 3 bits
bmmc n=3

c=000
110
# middle row
011
001
`
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(GrayCode(3)) {
		t.Fatalf("parsed wrong matrix:\n%v", p.A)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"bad header", "hello n=3\nc=000\n100\n010\n001"},
		{"zero n", "bmmc n=0\nc=\n"},
		{"huge n", "bmmc n=99\nc=0\n"},
		{"missing rows", "bmmc n=3\nc=000\n100\n010"},
		{"missing complement", "bmmc n=2\n10\n01\n11"},
		{"bad digit", "bmmc n=2\nc=00\n1x\n01"},
		{"wrong row width", "bmmc n=2\nc=00\n100\n01"},
		{"singular", "bmmc n=2\nc=00\n11\n11"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMarshalHumanReadable(t *testing.T) {
	out := string(GrayCode(4).Marshal())
	for _, want := range []string{"bmmc n=4", "c=0000", "1100"} {
		if !strings.Contains(out, want) {
			t.Errorf("marshal output missing %q:\n%s", want, out)
		}
	}
}
