package perm

import (
	"math/rand"
	"testing"

	"repro/internal/gf2"
)

// TestContiguousRunBits pins the run-detection rule on constructed cases:
// the run width is the number of low address bits the permutation fixes,
// and any disturbance — a swapped row, an off-diagonal entry, or a low
// complement bit — caps it exactly there.
func TestContiguousRunBits(t *testing.T) {
	const n = 10
	if got := Identity(n).ContiguousRunBits(); got != n {
		t.Fatalf("identity: run bits %d, want %d", got, n)
	}
	for k := 0; k < n-1; k++ {
		// Swap address bits k and k+1: the low k bits stay fixed, bit k
		// does not.
		a := gf2.Identity(n)
		a.SwapRows(k, k+1)
		if got := MustNew(a, 0).ContiguousRunBits(); got != k {
			t.Fatalf("swap(%d,%d): run bits %d, want %d", k, k+1, got, k)
		}
		// Complement bit k: same cap, via c instead of A.
		if got := MustNew(gf2.Identity(n), gf2.Vec(1)<<uint(k)).ContiguousRunBits(); got != k {
			t.Fatalf("complement bit %d: run bits %d, want %d", k, got, k)
		}
		// An off-diagonal entry feeding bit k+1 from bit k breaks the
		// column condition at k even though row k is untouched.
		a = gf2.Identity(n)
		a.Set(k+1, k, 1)
		if got := MustNew(a, 0).ContiguousRunBits(); got != k {
			t.Fatalf("column tap at %d: run bits %d, want %d", k, got, k)
		}
	}
}

// TestContiguousRunBitsSemantics verifies the definition against the Apply
// oracle exhaustively on small sizes: within every aligned run the map is
// an offset-preserving shift, and the width is maximal.
func TestContiguousRunBitsSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(530))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		p := MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))
		k := p.ContiguousRunBits()
		run := uint64(1) << uint(k)
		for base := uint64(0); base < p.Size(); base += run {
			y0 := p.Apply(base)
			for i := uint64(1); i < run; i++ {
				if p.Apply(base+i) != y0+i {
					t.Fatalf("n=%d k=%d: run broken at base %d offset %d", n, k, base, i)
				}
			}
		}
		if k < n {
			// Maximality: some aligned 2^(k+1) run is not contiguous.
			wide := run * 2
			broken := false
			for base := uint64(0); base < p.Size() && !broken; base += wide {
				y0 := p.Apply(base)
				for i := uint64(1); i < wide; i++ {
					if p.Apply(base+i) != y0+i {
						broken = true
						break
					}
				}
			}
			if !broken {
				t.Fatalf("n=%d: run bits %d not maximal", n, k)
			}
		}
	}
}

// FuzzCompiledApply cross-checks the compiled byte-table applier and its
// run detection against the naive matrix-vector BMMC.Apply oracle on
// fuzzer-chosen permutations and addresses.
func FuzzCompiledApply(f *testing.F) {
	f.Add(int64(1), uint64(0))
	f.Add(int64(7), uint64(42))
	f.Add(int64(-3), uint64(1<<63))
	f.Fuzz(func(t *testing.T, seed int64, xRaw uint64) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		p := MustNew(gf2.RandomNonsingular(rng, n), gf2.RandomVec(rng, n))
		ca := p.Compile()
		x := xRaw & uint64(gf2.Mask(n))
		if got, want := ca.Apply(x), p.Apply(x); got != want {
			t.Fatalf("n=%d x=%d: compiled %d, oracle %d", n, x, got, want)
		}
		k := p.ContiguousRunBits()
		if ca.RunBits() != k {
			t.Fatalf("n=%d: compiled run bits %d, oracle %d", n, ca.RunBits(), k)
		}
		// The coalescing contract at x's aligned run, as the scatter
		// kernels use it: one Apply at the run base extends by addition.
		run := uint64(1) << uint(k)
		base := x &^ (run - 1)
		y0 := p.Apply(base)
		step := uint64(1)
		if run > 1<<10 {
			step = run >> 10 // sample long runs instead of walking 2^k records
		}
		for i := uint64(0); i < run; i += step {
			if p.Apply(base+i) != y0+i {
				t.Fatalf("n=%d k=%d: Apply(%d+%d) != Apply(%d)+%d", n, k, base, i, base, i)
			}
		}
	})
}
