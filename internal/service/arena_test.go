package service

import (
	"bytes"
	"context"
	"sync"
	"testing"

	bmmc "repro"
)

// TestDatasetConcurrentStreamsShareArena hammers the data plane's pooled
// record arenas from many goroutines: concurrent downloads of two datasets
// interleaved with uploads, so slabs are acquired, filled, and released in
// parallel. Run under -race this pins that the per-size pools never hand
// one slab to two streams, and every stream still observes its own
// dataset's bytes exactly.
func TestDatasetConcurrentStreamsShareArena(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Workers: 2, QueueDepth: 8})
	dA := createDS(t, m, BackendMem)
	dB := createDS(t, m, BackendFile)

	recsA := make([]bmmc.Record, testConfig.N)
	recsB := make([]bmmc.Record, testConfig.N)
	for i := range recsA {
		recsA[i] = bmmc.Record{Key: uint64(i), Tag: 0xA}
		recsB[i] = bmmc.Record{Key: uint64(i), Tag: 0xB}
	}
	wireA, wireB := encodeRecords(recsA), encodeRecords(recsB)
	if err := dA.Upload(context.Background(), bytes.NewReader(wireA)); err != nil {
		t.Fatal(err)
	}
	if err := dB.Upload(context.Background(), bytes.NewReader(wireB)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d, wire := dA, wireA
			if g%2 == 1 {
				d, wire = dB, wireB
			}
			for iter := 0; iter < 10; iter++ {
				if iter%3 == 2 {
					// Re-upload the same records: exercises the load-side
					// arena concurrently with the download-side ones. A
					// conflict (409) is acceptable — another goroutine may
					// hold a stream on the other direction's admission
					// window — but data corruption is not.
					_ = d.Upload(context.Background(), bytes.NewReader(wire))
					continue
				}
				var got bytes.Buffer
				if err := d.Download(context.Background(), &got); err != nil {
					t.Errorf("goroutine %d: download: %v", g, err)
					return
				}
				if !bytes.Equal(got.Bytes(), wire) {
					t.Errorf("goroutine %d: download bytes diverge from upload", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
