package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	bmmc "repro"
	"repro/internal/pdm"
)

// Chaos e2e for the daemon: an injected disk fault mid-run must fail the
// job with the fault's message, release its admission slot, leave
// /v1/metrics consistent, and — for dataset-bound jobs — leave the shared
// dataset usable by a retried job.

// TestChaosJobFaultReleasesSlot submits a job whose per-job storage is
// wrapped in a flaky backend armed mid-run, from the first pass event on
// the executing goroutine. The job must land in StateFailed with the
// injected fault surfaced in its error, the admission queue must drain,
// and a subsequent clean job on the same daemon must run to completion
// with correct output.
func TestChaosJobFaultReleasesSlot(t *testing.T) {
	var inject atomic.Bool
	inject.Store(true)
	var armed atomic.Pointer[pdm.FlakyBackend]
	cfg := ManagerConfig{
		Workers:    1,
		QueueDepth: 4,
		WrapBackend: func(kind string, be bmmc.Backend) bmmc.Backend {
			if !inject.Load() {
				return be
			}
			// Disarmed through provisioning's canonical load; the hook
			// below arms it once the job is actually executing, so the
			// fault lands on the third counted mid-run operation.
			fb := pdm.NewFlakyBackend(be, pdm.FlakyOptions{FailAfterN: 3})
			fb.Disarm()
			armed.Store(fb)
			return fb
		},
	}
	cfg.hook = func(j *Job, ev bmmc.PassEvent) {
		if fb := armed.Load(); fb != nil {
			fb.Arm()
		}
	}
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m, nil))
	t.Cleanup(srv.Close)
	p := bmmc.BitReversal(testConfig.LgN())

	j, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StateFailed {
		t.Fatalf("faulted job finished %s (%q), want failed", s, j.Status().Error)
	}
	if msg := j.Status().Error; !strings.Contains(msg, "injected disk fault") {
		t.Fatalf("job error %q does not surface the injected fault", msg)
	}

	// The slot is released and the failure is visible in the gauges.
	mt := m.Metrics()
	if mt.QueueDepth != 0 || mt.JobsFailed != 1 || mt.JobsRunning != 0 {
		t.Fatalf("after faulted job: queue=%d failed=%d running=%d, want 0/1/0",
			mt.QueueDepth, mt.JobsFailed, mt.JobsRunning)
	}

	// A clean job reuses the freed slot and completes correctly.
	inject.Store(false)
	j2, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j2); s != StateDone {
		t.Fatalf("retry finished %s (%s), want done", s, j2.Status().Error)
	}
	var out bytes.Buffer
	if err := j2.Download(context.Background(), &out); err != nil {
		t.Fatal(err)
	}
	data := out.Bytes()
	for x := uint64(0); x < uint64(testConfig.N); x++ {
		if got := bmmc.DecodeRecord(data[p.Apply(x)*bmmc.RecordBytes:]); got.Key != x {
			t.Fatalf("address %d holds key %d, want %d", p.Apply(x), got.Key, x)
		}
	}

	// /v1/metrics agrees with the in-process gauges.
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire Metrics
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.JobsSubmitted != 2 || wire.JobsFailed != 1 || wire.JobsDone != 1 || wire.QueueDepth != 0 {
		t.Fatalf("/v1/metrics inconsistent after chaos: %+v", wire)
	}
	if rep := j2.Status().Report; rep == nil || wire.ParallelIOs != rep.ParallelIOs {
		t.Fatalf("/v1/metrics aggregates %d parallel I/Os, want only the clean job's %+v",
			wire.ParallelIOs, j2.Status().Report)
	}
}

// TestChaosDatasetSurvivesFaultedJob binds two jobs to one shared dataset
// whose storage faults during the first. The failed pass must not swap
// portions, so the dataset still holds its canonical input; the disarmed
// retry permutes it correctly, and the dataset gauges count both attempts.
func TestChaosDatasetSurvivesFaultedJob(t *testing.T) {
	var flaky *pdm.FlakyBackend
	m := newTestManager(t, ManagerConfig{
		Workers:    1,
		QueueDepth: 4,
		WrapBackend: func(kind string, be bmmc.Backend) bmmc.Backend {
			fb := pdm.NewFlakyBackend(be, pdm.FlakyOptions{FailAfterN: 1})
			fb.Disarm() // dataset provisioning loads canonical records clean
			flaky = fb
			return fb
		},
	})
	d := createDS(t, m, BackendFile)
	if flaky == nil {
		t.Fatal("WrapBackend seam was not applied to dataset storage")
	}
	p := bmmc.GrayCode(testConfig.LgN())

	// Job 1: every counted operation faults — it cannot complete a pass.
	flaky.Reset()
	flaky.Arm()
	j1 := dsSubmit(t, m, d, p)
	if s := waitTerminal(t, j1); s != StateFailed {
		t.Fatalf("faulted dataset job finished %s (%q), want failed", s, j1.Status().Error)
	}
	if msg := j1.Status().Error; !strings.Contains(msg, "injected disk fault") {
		t.Fatalf("job error %q does not surface the injected fault", msg)
	}
	if st := d.Status(); st.Released {
		t.Fatal("dataset released by a failed job")
	}

	// Job 2 on the same handle, injection off: the dataset's input must be
	// intact, so the output is the permutation of the canonical records.
	flaky.Disarm()
	j2 := dsSubmit(t, m, d, p)
	if s := waitTerminal(t, j2); s != StateDone {
		t.Fatalf("retry on dataset finished %s (%s), want done", s, j2.Status().Error)
	}
	var out bytes.Buffer
	if err := d.Download(context.Background(), &out); err != nil {
		t.Fatal(err)
	}
	data := out.Bytes()
	for x := uint64(0); x < uint64(testConfig.N); x++ {
		if got := bmmc.DecodeRecord(data[p.Apply(x)*bmmc.RecordBytes:]); got.Key != x {
			t.Fatalf("address %d holds key %d, want %d: failed job corrupted the dataset", p.Apply(x), got.Key, x)
		}
	}

	mt := m.Metrics()
	if mt.DatasetJobsRun != 2 || mt.DatasetsActive != 1 || mt.JobsFailed != 1 || mt.JobsDone != 1 || mt.QueueDepth != 0 {
		t.Fatalf("dataset gauges inconsistent after chaos: %+v", mt)
	}
}
