package service

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	bmmc "repro"
)

// dsEntry is one daemon-resident dataset: a bmmc.Dataset on provisioned
// storage plus the service-level bookkeeping that lets many jobs chain on
// it safely. The entry owns three invariants:
//
//   - Jobs bound to one dataset execute in submission order (the ticket
//     turnstile), so a chain "bit-reversal then its inverse" composes the
//     way the submitter wrote it even with a multi-worker pool.
//   - The data plane and the job plane exclude each other: uploads and
//     downloads are admitted only while no job is active, and jobs are
//     admitted only while no stream is in flight, so a stream never
//     observes (or feeds) a half-permuted dataset.
//   - Deletion is refused (409) while jobs are active, waits for in-flight
//     streams to drain, and is idempotent; Shutdown drains datasets the
//     same way it drains jobs.
type dsEntry struct {
	id      string
	backend string
	cfg     bmmc.Config
	ds      *bmmc.Dataset
	dir     string  // provisioned storage directory ("" for mem)
	sink    *ioSink // routes instrumented-backend samples to the running job
	created time.Time

	mu         sync.Mutex
	cond       *sync.Cond   // signaled when a stream ends or the turnstile moves
	active     int          // jobs bound to this dataset that are not yet terminal
	nextTicket int          // next execution-order ticket to hand out
	nowServing int          // ticket currently allowed to execute
	retired    map[int]bool // tickets retired ahead of their turn (abandoned jobs)
	jobsRun    int          // jobs that executed on this dataset
	loaded     bool         // user records uploaded (else canonical)
	streams    int          // uploads + downloads in flight
	handoff    bool         // replica transfer in flight; data and job planes closed
	released   bool         // storage closed and removed (or being removed)
}

func newDSEntry(id, backend string, cfg bmmc.Config, ds *bmmc.Dataset, dir string) *dsEntry {
	d := &dsEntry{id: id, backend: backend, cfg: cfg, ds: ds, dir: dir,
		created: time.Now(), retired: make(map[int]bool)}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// errDatasetGone is the terminal-state error for data-plane and job
// submissions against a deleted dataset.
func (d *dsEntry) errGone() error {
	return &httpError{http.StatusGone, "dataset " + d.id + " has been deleted"}
}

// bind reserves an execution-order ticket for a new job on this dataset,
// counting the job as active until it reaches a terminal state. It refuses
// deleted datasets and datasets with a stream in flight (finish uploads
// before chaining jobs).
func (d *dsEntry) bind() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.released {
		return 0, d.errGone()
	}
	if d.streams > 0 {
		return 0, &httpError{http.StatusConflict, "dataset " + d.id + " has an upload or download in flight"}
	}
	if d.handoff {
		return 0, d.errHandoff()
	}
	d.active++
	t := d.nextTicket
	d.nextTicket++
	return t, nil
}

// waitTurn blocks until ticket's job may execute. Workers dequeue jobs in
// submission order, so the wait is short: it only covers the window where
// a later job of the same dataset was claimed by a second worker while an
// earlier one still runs.
func (d *dsEntry) waitTurn(ticket int) {
	d.mu.Lock()
	for d.nowServing != ticket {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// retire takes ticket out of the turnstile — after its job executed, was
// canceled, or was abandoned before ever reaching a worker. Each ticket is
// retired exactly once; retirement may arrive out of order, and the
// turnstile advances past every consecutively retired ticket.
func (d *dsEntry) retire(ticket int) {
	d.mu.Lock()
	d.retired[ticket] = true
	for d.retired[d.nowServing] {
		delete(d.retired, d.nowServing)
		d.nowServing++
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// jobDone drops a terminal job's active reference (each job calls it
// exactly once, from its terminal state transition).
func (d *dsEntry) jobDone() {
	d.mu.Lock()
	d.active--
	d.cond.Broadcast()
	d.mu.Unlock()
}

// ran records that a job actually executed on the dataset.
func (d *dsEntry) ran() {
	d.mu.Lock()
	d.jobsRun++
	d.mu.Unlock()
}

// startStream admits an upload or download: only while the dataset is
// alive and no job is queued or running on it.
func (d *dsEntry) startStream() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.released {
		return d.errGone()
	}
	if d.active > 0 {
		return &httpError{http.StatusConflict, "dataset " + d.id + " has active jobs: wait for them before streaming data"}
	}
	if d.handoff {
		return d.errHandoff()
	}
	d.streams++
	return nil
}

// errHandoff is the wrong-state error for calls racing a handoff; 503
// marks it transient, since the dataset reappears (here or on the
// handoff target) moments later.
func (d *dsEntry) errHandoff() error {
	return &httpError{http.StatusServiceUnavailable, "dataset " + d.id + " is being handed off to another node"}
}

// beginHandoff closes both planes for a replica transfer: no new job may
// bind and no new stream may start until finishHandoff. It holds a stream
// slot so deletion drains behind it like behind any data-plane user.
func (d *dsEntry) beginHandoff() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.released {
		return d.errGone()
	}
	if d.active > 0 {
		return &httpError{http.StatusConflict, "dataset " + d.id + " has active jobs: await them before handing off"}
	}
	if d.streams > 0 {
		return &httpError{http.StatusConflict, "dataset " + d.id + " has an upload or download in flight"}
	}
	if d.handoff {
		return d.errHandoff()
	}
	d.handoff = true
	d.streams++
	return nil
}

// finishHandoff reopens the dataset — or, when deleteLocal is set after a
// successful transfer, atomically releases it so no job can slip in
// between the transfer and the delete. It reports whether the caller now
// owns the storage teardown, exactly like tryRelease.
func (d *dsEntry) finishHandoff(deleteLocal bool) (owner bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handoff = false
	d.streams--
	if deleteLocal && !d.released {
		d.released = true
		for d.streams > 0 {
			d.cond.Wait()
		}
		owner = true
	}
	d.cond.Broadcast()
	return owner
}

// endStream retires a stream, marking the dataset loaded when an upload
// completed successfully.
func (d *dsEntry) endStream(uploaded bool) {
	d.mu.Lock()
	d.streams--
	if uploaded {
		d.loaded = true
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Upload replaces the dataset's records with N records from r in the
// 16-byte wire format. ctx is the transport context.
func (d *dsEntry) Upload(ctx context.Context, r io.Reader) error {
	if err := d.startStream(); err != nil {
		return err
	}
	err := d.ds.Load(ctx, r)
	d.endStream(err == nil)
	if err != nil {
		return &httpError{http.StatusBadRequest, "loading dataset input: " + err.Error()}
	}
	return nil
}

// Download streams the dataset's current records — the output of the most
// recent chained job — to w in the wire format. The HTTP layer admits the
// stream itself (startStream before committing headers) and uses the
// parts directly; this composed form serves in-process callers and tests.
func (d *dsEntry) Download(ctx context.Context, w io.Writer) error {
	if err := d.startStream(); err != nil {
		return err
	}
	defer d.endStream(false)
	return d.ds.Dump(ctx, w)
}

// Status snapshots the dataset as its wire representation.
func (d *dsEntry) Status() *DatasetStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &DatasetStatus{
		ID:          d.id,
		Config:      d.cfg,
		Backend:     d.backend,
		InputLoaded: d.loaded,
		ActiveJobs:  d.active,
		JobsRun:     d.jobsRun,
		Released:    d.released,
		Created:     d.created,
	}
}

// tryRelease marks the dataset deleted if no job is active, then waits for
// in-flight streams to drain. It returns whether the caller now owns the
// storage teardown (exactly one caller ever does) — a second delete of an
// already-released dataset is a successful no-op.
func (d *dsEntry) tryRelease() (owner bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.released {
		return false, nil
	}
	if d.active > 0 {
		return false, &httpError{http.StatusConflict, "dataset " + d.id + " has active jobs: cancel or await them before deleting"}
	}
	d.released = true
	for d.streams > 0 {
		d.cond.Wait()
	}
	return true, nil
}
