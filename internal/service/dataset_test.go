package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	bmmc "repro"
)

func createDS(t *testing.T, m *Manager, backend string) *dsEntry {
	t.Helper()
	d, err := m.CreateDataset(CreateDatasetRequest{Config: testConfig, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func dsSubmit(t *testing.T, m *Manager, d *dsEntry, p bmmc.Permutation) *Job {
	t.Helper()
	j, err := m.Submit(SubmitRequest{Dataset: d.id, Perm: string(bmmc.MarshalPermutation(p))})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func httpStatus(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error")
	}
	he, ok := err.(*httpError)
	if !ok {
		t.Fatalf("expected *httpError, got %T: %v", err, err)
	}
	return he.Status()
}

// TestDatasetChainLifecycle drives the full dataset-handle flow in
// process: create, upload once, chain two jobs, download once, delete —
// and pins the acceptance equivalence: the downloaded records equal the
// composed permutation applied to the upload by a direct Engine run.
func TestDatasetChainLifecycle(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Workers: 2, QueueDepth: 8})
	d := createDS(t, m, BackendFile)
	n := testConfig.LgN()
	p1, p2 := bmmc.BitReversal(n), bmmc.Transpose(4, n-4)

	// Upload user records once.
	recs := make([]bmmc.Record, testConfig.N)
	for i := range recs {
		recs[i] = bmmc.Record{Key: uint64(i) * 3_037_000_507 % (1 << 40), Tag: uint64(i)}
	}
	if err := d.Upload(context.Background(), bytes.NewReader(encodeRecords(recs))); err != nil {
		t.Fatal(err)
	}
	if st := d.Status(); !st.InputLoaded {
		t.Fatal("upload did not mark the dataset loaded")
	}

	// Chain two jobs on the handle.
	j1 := dsSubmit(t, m, d, p1)
	j2 := dsSubmit(t, m, d, p2)
	if s := waitTerminal(t, j1); s != StateDone {
		t.Fatalf("job 1 finished %s: %s", s, j1.Status().Error)
	}
	if s := waitTerminal(t, j2); s != StateDone {
		t.Fatalf("job 2 finished %s: %s", s, j2.Status().Error)
	}
	if st := j1.Status(); st.Dataset != d.id || st.Report == nil || st.Report.ParallelIOs == 0 {
		t.Fatalf("job 1 status lacks dataset linkage or per-job cost: %+v", st)
	}

	// Per-job stats are deltas: both jobs measured their own run.
	r1, r2 := j1.Status().Report, j2.Status().Report
	if r1.ParallelIOs != r1.ParallelReads+r1.ParallelWrites || r2.ParallelIOs <= 0 {
		t.Fatalf("per-job stat deltas inconsistent: %+v / %+v", r1, r2)
	}

	// Download once; compare against a direct chained Engine run.
	var got bytes.Buffer
	if err := d.Download(context.Background(), &got); err != nil {
		t.Fatal(err)
	}
	ds, err := bmmc.CreateDataset(testConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if err := ds.LoadRecords(recs); err != nil {
		t.Fatal(err)
	}
	eng := bmmc.NewEngine()
	for _, p := range []bmmc.Permutation{p1, p2} {
		if _, err := eng.Permute(context.Background(), ds, p); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if err := ds.Dump(context.Background(), &want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("daemon dataset-chain output differs from the direct Engine chain")
	}

	// Metrics see the dataset jobs; delete reclaims and is idempotent.
	if mt := m.Metrics(); mt.DatasetsCreated != 1 || mt.DatasetJobsRun != 2 || mt.DatasetsActive != 1 {
		t.Fatalf("metrics: %+v", mt)
	}
	if _, err := m.DeleteDataset(d.id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteDataset(d.id); err != nil {
		t.Fatalf("second delete not idempotent: %v", err)
	}
	if mt := m.Metrics(); mt.DatasetsActive != 0 {
		t.Fatalf("deleted dataset still active in metrics: %+v", mt)
	}
	// The data plane is gone.
	if status := httpStatus(t, d.Upload(context.Background(), bytes.NewReader(nil))); status != http.StatusGone {
		t.Fatalf("upload to deleted dataset returned %d, want 410", status)
	}
}

// TestDatasetJobOrdering floods a multi-worker pool with a chain of
// permutations on one dataset; the ticket turnstile must execute them in
// submission order, so the final layout is the in-order composition.
func TestDatasetJobOrdering(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Workers: 4, QueueDepth: 16})
	d := createDS(t, m, BackendMem)
	n := testConfig.LgN()
	// Non-commuting steps: reordering any two changes the composition.
	steps := []bmmc.Permutation{
		bmmc.BitReversal(n),
		bmmc.GrayCode(n),
		bmmc.Transpose(3, n-3),
		bmmc.GrayCode(n),
		bmmc.RotateBits(n, 5),
		bmmc.BitReversal(n),
	}
	jobs := make([]*Job, len(steps))
	for i, p := range steps {
		jobs[i] = dsSubmit(t, m, d, p)
	}
	for i, j := range jobs {
		if s := waitTerminal(t, j); s != StateDone {
			t.Fatalf("chain job %d finished %s: %s", i, s, j.Status().Error)
		}
	}
	composed := bmmc.Identity(n)
	for _, p := range steps {
		composed = p.Compose(composed)
	}
	if err := d.ds.Verify(composed); err != nil {
		t.Fatalf("chain did not compose in submission order: %v", err)
	}
}

// TestDatasetDeleteWhileJobRunning pins the 409 contract: deleting a
// dataset is refused while a job is bound to it — held mid-run by the
// progress hook, deterministically — and succeeds once the chain drains.
func TestDatasetDeleteWhileJobRunning(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	var m *Manager
	cfg := ManagerConfig{Workers: 1, QueueDepth: 4, Dir: t.TempDir()}
	deleteErr := make(chan error, 1)
	cfg.hook = func(j *Job, ev bmmc.PassEvent) {
		if ev.Pass == 1 && ev.Load == 1 {
			once.Do(func() {
				_, err := m.DeleteDataset(j.dsEntry.id)
				deleteErr <- err
				close(gate)
			})
		}
	}
	m = newTestManager(t, cfg)
	d := createDS(t, m, BackendFile)
	j := dsSubmit(t, m, d, bmmc.BitReversal(testConfig.LgN()))
	<-gate
	if status := httpStatus(t, <-deleteErr); status != http.StatusConflict {
		t.Fatalf("delete-while-running returned %d, want 409", status)
	}
	if s := waitTerminal(t, j); s != StateDone {
		t.Fatalf("job finished %s after refused delete: %s", s, j.Status().Error)
	}
	if _, err := m.DeleteDataset(d.id); err != nil {
		t.Fatalf("delete after drain: %v", err)
	}
}

// TestDatasetDeleteWaitsForDownload pins the stream-drain contract: a
// DELETE issued while a download is streaming blocks until the stream
// finishes, then reclaims storage — and nothing leaks.
func TestDatasetDeleteWaitsForDownload(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		m, err := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.Shutdown(ctx)
		}()
		d := createDS(t, m, BackendFile)

		started := make(chan struct{})
		release := make(chan struct{})
		var out bytes.Buffer
		dlErr := make(chan error, 1)
		go func() {
			dlErr <- d.Download(context.Background(), blockingWriter{&out, started, release})
		}()
		<-started

		deleted := make(chan error, 1)
		go func() {
			_, err := m.DeleteDataset(d.id)
			deleted <- err
		}()
		// The delete must not complete while the stream is held open.
		select {
		case err := <-deleted:
			t.Fatalf("delete finished mid-download (err=%v)", err)
		case <-time.After(50 * time.Millisecond):
		}
		close(release)
		if err := <-dlErr; err != nil {
			t.Fatalf("download aborted by delete: %v", err)
		}
		if err := <-deleted; err != nil {
			t.Fatalf("delete after stream drain: %v", err)
		}
		if out.Len() != testConfig.N*bmmc.RecordBytes {
			t.Fatalf("download truncated: %d bytes", out.Len())
		}
	}()
	waitNoLeak(t, base)
}

// blockingWriter signals the first write, then holds the stream open until
// released.
type blockingWriter struct {
	w       io.Writer
	started chan struct{}
	release chan struct{}
}

func (b blockingWriter) Write(p []byte) (int, error) {
	select {
	case <-b.started:
	default:
		close(b.started)
		<-b.release
	}
	return b.w.Write(p)
}

// waitNoLeak polls the goroutine count back down to the baseline.
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > base {
		t.Errorf("goroutine leak: %d before, %d after", base, now)
	}
}

// TestDatasetShutdownDrains pins that Shutdown treats datasets like jobs:
// an in-flight download finishes before storage is reclaimed, queued and
// running dataset jobs drain, and no goroutines leak.
func TestDatasetShutdownDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		cfg := ManagerConfig{Workers: 2, QueueDepth: 8, Dir: t.TempDir()}
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.CreateDataset(CreateDatasetRequest{Config: testConfig, Backend: BackendFile})
		if err != nil {
			t.Fatal(err)
		}
		// Run one job through so the dataset is exercised.
		j, err := m.Submit(SubmitRequest{Dataset: d.id, Perm: string(bmmc.MarshalPermutation(bmmc.GrayCode(testConfig.LgN())))})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)

		// Hold a download open across the shutdown call.
		started := make(chan struct{})
		release := make(chan struct{})
		dlErr := make(chan error, 1)
		var out bytes.Buffer
		go func() {
			dlErr <- d.Download(context.Background(), blockingWriter{&out, started, release})
		}()
		<-started

		shutdownDone := make(chan struct{})
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.Shutdown(ctx)
			close(shutdownDone)
		}()
		select {
		case <-shutdownDone:
			t.Fatal("shutdown completed while a dataset download was streaming")
		case <-time.After(50 * time.Millisecond):
		}
		close(release)
		if err := <-dlErr; err != nil {
			t.Fatalf("download aborted by shutdown: %v", err)
		}
		select {
		case <-shutdownDone:
		case <-time.After(10 * time.Second):
			t.Fatal("shutdown did not complete after the stream drained")
		}
		if out.Len() != testConfig.N*bmmc.RecordBytes {
			t.Fatalf("download truncated by shutdown: %d bytes", out.Len())
		}
	}()
	waitNoLeak(t, base)
}

// TestDatasetConflicts pins the 4xx surface of the dataset resource.
func TestDatasetConflicts(t *testing.T) {
	gate := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := ManagerConfig{Workers: 1, QueueDepth: 4, Dir: t.TempDir()}
	cfg.hook = func(j *Job, ev bmmc.PassEvent) {
		if ev.Pass == 1 && ev.Load == 1 {
			once.Do(func() {
				close(gate)
				<-release
			})
		}
	}
	m := newTestManager(t, cfg)
	d := createDS(t, m, BackendMem)
	n := testConfig.LgN()

	// Unknown dataset: 404.
	_, err := m.Submit(SubmitRequest{Dataset: "d9999-nope", Perm: string(bmmc.MarshalPermutation(bmmc.GrayCode(n)))})
	if httpStatus(t, err) != http.StatusNotFound {
		t.Fatalf("unknown dataset submit: %v", err)
	}
	// Backend on a dataset job: 400.
	_, err = m.Submit(SubmitRequest{Dataset: d.id, Backend: BackendFile, Perm: string(bmmc.MarshalPermutation(bmmc.GrayCode(n)))})
	if httpStatus(t, err) != http.StatusBadRequest {
		t.Fatalf("dataset submit with backend: %v", err)
	}
	// AwaitInput on a dataset job: 400.
	_, err = m.Submit(SubmitRequest{Dataset: d.id, AwaitInput: true, Perm: string(bmmc.MarshalPermutation(bmmc.GrayCode(n)))})
	if httpStatus(t, err) != http.StatusBadRequest {
		t.Fatalf("dataset submit with await_input: %v", err)
	}
	// Mismatched geometry: 400.
	other := bmmc.Config{N: 8192, D: 4, B: 8, M: 256}
	_, err = m.Submit(SubmitRequest{Dataset: d.id, Config: other, Perm: string(bmmc.MarshalPermutation(bmmc.GrayCode(other.LgN())))})
	if httpStatus(t, err) != http.StatusBadRequest {
		t.Fatalf("dataset submit with wrong geometry: %v", err)
	}

	// While a job is mid-run: uploads, downloads, and deletes all 409.
	j := dsSubmit(t, m, d, bmmc.BitReversal(n))
	<-gate
	if httpStatus(t, d.Upload(context.Background(), bytes.NewReader(nil))) != http.StatusConflict {
		t.Fatal("upload while job active not refused")
	}
	if httpStatus(t, d.Download(context.Background(), io.Discard)) != http.StatusConflict {
		t.Fatal("download while job active not refused")
	}
	_, err = m.DeleteDataset(d.id)
	if httpStatus(t, err) != http.StatusConflict {
		t.Fatalf("delete while job active: %v", err)
	}
	close(release)
	if s := waitTerminal(t, j); s != StateDone {
		t.Fatalf("gated job finished %s: %s", s, j.Status().Error)
	}

	// Job-level data plane on a dataset job: 409 pointing at the dataset.
	if err := j.Download(context.Background(), io.Discard); err == nil ||
		!strings.Contains(err.Error(), "/v1/datasets/") {
		t.Fatalf("dataset job served job-level output: %v", err)
	}

	// In-flight upload excludes job submission: 409.
	pr, pw := io.Pipe()
	upErr := make(chan error, 1)
	go func() { upErr <- d.Upload(context.Background(), pr) }()
	waitStreams(t, d)
	_, err = m.Submit(SubmitRequest{Dataset: d.id, Perm: string(bmmc.MarshalPermutation(bmmc.GrayCode(n)))})
	if httpStatus(t, err) != http.StatusConflict {
		t.Fatalf("submit during upload: %v", err)
	}
	recs := make([]bmmc.Record, testConfig.N)
	for i := range recs {
		recs[i] = bmmc.MakeRecord(uint64(i))
	}
	if _, err := pw.Write(encodeRecords(recs)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-upErr; err != nil {
		t.Fatal(err)
	}
}

// waitStreams polls until the dataset registers an in-flight stream.
func waitStreams(t *testing.T, d *dsEntry) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		n := d.streams
		d.mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("upload stream never registered")
}
