package service_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	bmmc "repro"
	"repro/client"
	"repro/internal/service"
)

// startDaemon serves a fresh manager over httptest and returns a client.
func startDaemon(t *testing.T, cfg service.ManagerConfig) (*client.Client, *service.Manager) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := service.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(m, nil))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return client.New(srv.URL), m
}

// TestServiceEndToEnd is the PR's acceptance run: Submit + Upload + Watch
// + Download of a 2^20-record bit-reversal against a sharded file backend
// must be record-identical to a direct Permuter.Execute of the same data,
// with identical parallel-I/O statistics reported by /v1/metrics — for two
// concurrent jobs on one daemon.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 2^20-record service run")
	}
	cfg := bmmc.Config{N: 1 << 20, D: 8, B: 64, M: 1 << 14}
	p := bmmc.BitReversal(cfg.LgN())

	// User data distinct from the canonical records.
	input := make([]byte, cfg.N*bmmc.RecordBytes)
	for i := 0; i < cfg.N; i++ {
		bmmc.Record{Key: uint64(i)*0x9e3779b9 + 7, Tag: uint64(i)}.Encode(input[i*bmmc.RecordBytes:])
	}

	// Oracle: the library used directly, in memory.
	oracle, err := bmmc.NewPermuter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if err := oracle.Load(context.Background(), bytes.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	pl, err := oracle.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	oracleRep, err := oracle.Execute(context.Background(), pl)
	if err != nil {
		t.Fatal(err)
	}
	oracleStats := oracle.Stats()
	var want bytes.Buffer
	if err := oracle.Dump(context.Background(), &want); err != nil {
		t.Fatal(err)
	}

	c, _ := startDaemon(t, service.ManagerConfig{Workers: 2, QueueDepth: 4, Shards: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Submit sequentially (so the shared plan cache serves the second job),
	// then drive upload/watch/download concurrently.
	req := client.NewSubmitRequest(cfg, p)
	req.Backend = client.BackendSharded
	req.AwaitInput = true // hold each job for its upload; workers must not race the data plane
	var jobs [2]*client.JobStatus
	for i := range jobs {
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if st.Plan == nil || st.Plan.Class != "BMMC" || st.Plan.CostIOs != oracleRep.ParallelIOs {
			t.Fatalf("submit plan summary %+v does not quote the oracle cost %d", st.Plan, oracleRep.ParallelIOs)
		}
		jobs[i] = st
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, st := range jobs {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := c.Upload(ctx, id, bytes.NewReader(input)); err != nil {
				errs <- err
				return
			}
			progress := 0
			final, err := c.Watch(ctx, id, func(ev client.Event) {
				if ev.Progress != nil {
					progress++
				}
			})
			if err != nil {
				errs <- err
				return
			}
			if final.State != client.StateDone {
				errs <- errors.New("job " + id + " finished " + string(final.State) + ": " + final.Error)
				return
			}
			if progress == 0 {
				errs <- errors.New("job " + id + ": no progress events observed")
				return
			}
			if final.Report.ParallelIOs != oracleRep.ParallelIOs ||
				final.Report.ParallelReads != oracleStats.ParallelReads ||
				final.Report.ParallelWrites != oracleStats.ParallelWrites {
				errs <- errors.New("job " + id + ": per-job stats differ from the oracle run")
				return
			}
			var out bytes.Buffer
			out.Grow(len(input))
			if err := c.Download(ctx, id, &out); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out.Bytes(), want.Bytes()) {
				errs <- errors.New("job " + id + ": downloaded records differ from the oracle output")
				return
			}
			errs <- nil
		}(st.ID)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// /v1/metrics aggregates exactly the two jobs' parallel I/Os — the
	// same counts the oracle measured, twice.
	mt, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mt.ParallelIOs != 2*oracleStats.ParallelIOs() ||
		mt.ParallelReads != 2*oracleStats.ParallelReads ||
		mt.ParallelWrites != 2*oracleStats.ParallelWrites {
		t.Fatalf("aggregate metrics %+v != 2x oracle stats %v", mt, oracleStats)
	}
	if mt.JobsDone != 2 || mt.PlanCacheHits != 1 || mt.PlanCacheMisses != 1 {
		t.Fatalf("metrics %+v: want 2 done jobs and a 1/1 plan-cache split", mt)
	}
}

// TestServiceValidation walks the HTTP error surface: invalid submissions,
// unknown jobs, and wrong-state data-plane calls.
func TestServiceValidation(t *testing.T) {
	c, _ := startDaemon(t, service.ManagerConfig{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	small := bmmc.Config{N: 4096, D: 4, B: 8, M: 256}

	apiStatus := func(err error) int {
		var ae *client.APIError
		if errors.As(err, &ae) {
			return ae.Status
		}
		return 0
	}

	// Invalid geometry.
	bad := client.NewSubmitRequest(small, bmmc.BitReversal(small.LgN()))
	bad.Config.N = 100
	if _, err := c.Submit(ctx, bad); apiStatus(err) != 400 {
		t.Errorf("invalid geometry: got %v, want HTTP 400", err)
	}
	// Garbage permutation text.
	if _, err := c.Submit(ctx, client.SubmitRequest{Config: small, Perm: "nonsense"}); apiStatus(err) != 400 {
		t.Errorf("garbage permutation: got %v, want HTTP 400", err)
	}
	// Wrong address width.
	if _, err := c.Submit(ctx, client.NewSubmitRequest(small, bmmc.BitReversal(8))); apiStatus(err) != 400 {
		t.Errorf("wrong-width permutation: got %v, want HTTP 400", err)
	}
	// Unknown backend.
	req := client.NewSubmitRequest(small, bmmc.BitReversal(small.LgN()))
	req.Backend = "tape"
	if _, err := c.Submit(ctx, req); apiStatus(err) != 400 {
		t.Errorf("unknown backend: got %v, want HTTP 400", err)
	}
	// Unknown job id.
	if _, err := c.Status(ctx, "nope"); apiStatus(err) != 404 {
		t.Errorf("unknown job: got %v, want HTTP 404", err)
	}
	if err := c.Download(ctx, "nope", &bytes.Buffer{}); apiStatus(err) != 404 {
		t.Errorf("unknown job output: got %v, want HTTP 404", err)
	}

	// A completed job rejects further input and double downloads work.
	st, err := c.Submit(ctx, client.NewSubmitRequest(small, bmmc.GrayCode(small.LgN())))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("job finished %s", final.State)
	}
	if err := c.Upload(ctx, st.ID, bytes.NewReader(make([]byte, small.N*bmmc.RecordBytes))); apiStatus(err) != 409 {
		t.Errorf("late upload: got %v, want HTTP 409", err)
	}
	var out1, out2 bytes.Buffer
	if err := c.Download(ctx, st.ID, &out1); err != nil {
		t.Fatal(err)
	}
	if err := c.Download(ctx, st.ID, &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("repeated downloads differ")
	}

	// DELETE on the terminal job releases its storage; output is then gone.
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Download(ctx, st.ID, &bytes.Buffer{}); apiStatus(err) != 410 {
		t.Errorf("released output: got %v, want HTTP 410", err)
	}
}

// TestDetectSubmitRoundTrip is the satellite path: a target vector with an
// affine offset (vector reversal: c = all ones) detected at run time, the
// detected permutation marshaled, and the marshal submitted to the service
// — the job must execute it identically to the generating permutation.
func TestDetectSubmitRoundTrip(t *testing.T) {
	small := bmmc.Config{N: 4096, D: 4, B: 8, M: 256}
	p := bmmc.VectorReversal(small.LgN())

	res, err := bmmc.DetectTargets(small, p.Apply)
	if err != nil {
		t.Fatal(err)
	}
	detected, err := res.Permutation()
	if err != nil {
		t.Fatal(err)
	}
	if !detected.Equal(p) {
		t.Fatalf("detection returned %v, want %v", detected, p)
	}

	c, _ := startDaemon(t, service.ManagerConfig{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	st, err := c.Submit(ctx, client.SubmitRequest{
		Config: small,
		Perm:   string(bmmc.MarshalPermutation(detected)),
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	var out bytes.Buffer
	if err := c.Download(ctx, st.ID, &out); err != nil {
		t.Fatal(err)
	}
	data := out.Bytes()
	for x := uint64(0); x < uint64(small.N); x++ {
		if got := bmmc.DecodeRecord(data[p.Apply(x)*bmmc.RecordBytes:]); got.Key != x {
			t.Fatalf("address %d holds key %d, want %d: affine offset lost in the submit round trip", p.Apply(x), got.Key, x)
		}
	}
}
