package service

import "sync"

// broadcaster fans a job's events out to any number of subscribers without
// ever blocking the publishing (executing) goroutine. Each subscriber owns
// a small coalescing queue: state events are all kept, in order (the
// lifecycle is short and monotonic, so this is bounded), while progress
// events collapse to the most recent one — a slow consumer sees a sampled
// progress stream but never misses a state transition.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[*subscriber]struct{})}
}

type subscriber struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Event // pending events in publish order
	progIdx int     // index of the pending progress event in queue, -1 if none
	done    bool    // no further events: stream closed or consumer canceled

	ch   chan Event
	quit chan struct{}
	once sync.Once
}

// subscribe registers a new subscriber and returns its channel plus an
// idempotent cancel. The channel closes after all pending events drain
// once the stream ends (or immediately if the job is already terminal and
// the stream closed).
func (b *broadcaster) subscribe() (<-chan Event, func()) {
	s := &subscriber{ch: make(chan Event), quit: make(chan struct{}), progIdx: -1}
	s.cond = sync.NewCond(&s.mu)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.ch)
		return s.ch, func() {}
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	go s.pump()
	cancel := func() {
		b.mu.Lock()
		delete(b.subs, s)
		b.mu.Unlock()
		s.finish()
		s.once.Do(func() { close(s.quit) })
	}
	return s.ch, cancel
}

// publish delivers ev to every subscriber's queue. Never blocks.
func (b *broadcaster) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for s := range b.subs {
		s.push(ev)
	}
}

// close ends the stream: every subscriber drains its pending events and
// then its channel closes. Publishing after close is a no-op.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.finish()
	}
	b.subs = nil
}

// push appends a state event, or coalesces a progress event into the one
// already pending (updating its payload in place, keeping its position in
// the order). The queue stays bounded: at most one progress event plus the
// handful of lifecycle states.
func (s *subscriber) push(ev Event) {
	s.mu.Lock()
	if !s.done {
		if ev.Type == EventProgress && s.progIdx >= 0 {
			s.queue[s.progIdx] = ev
		} else {
			if ev.Type == EventProgress {
				s.progIdx = len(s.queue)
			}
			s.queue = append(s.queue, ev)
		}
	}
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *subscriber) finish() {
	s.mu.Lock()
	s.done = true
	s.cond.Signal()
	s.mu.Unlock()
}

// pump moves queued events onto the subscriber's channel in order and
// closes the channel once the stream has ended and the queue is drained.
func (s *subscriber) pump() {
	defer close(s.ch)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.done {
			s.cond.Wait()
		}
		if len(s.queue) == 0 { // done and drained
			s.mu.Unlock()
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		switch {
		case s.progIdx == 0:
			s.progIdx = -1
		case s.progIdx > 0:
			s.progIdx--
		}
		s.mu.Unlock()
		select {
		case s.ch <- ev:
		case <-s.quit:
			return
		}
	}
}
