package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	bmmc "repro"
)

// handoffHTTPTimeout bounds the control-plane calls of a handoff (create
// and delete on the target). The record stream itself is unbounded: its
// duration is data-dependent and the transfer fails fast on a dead peer.
const handoffHTTPTimeout = 30 * time.Second

// HandoffDataset replicates a dataset onto another daemon by replaying
// the 16-byte record wire format — the cluster's rebalance primitive.
// While the transfer runs the dataset admits no jobs and no streams; on
// success with req.Delete the local copy is released atomically, so there
// is no window where a job could land on data that is about to vanish.
//
// The transfer is push-style over the target's public surface: create the
// dataset there (same geometry and backend, same id unless req.ID renames
// it), stream the records into it, and roll the remote copy back if the
// stream dies midway. Target failures surface as 502.
func (m *Manager) HandoffDataset(ctx context.Context, id string, req HandoffRequest) (*dsEntry, error) {
	d, ok := m.Dataset(id)
	if !ok {
		return nil, errUnknownDataset(id)
	}
	if req.Target == "" {
		return nil, &httpError{http.StatusBadRequest, "handoff needs a target daemon URL"}
	}
	destID := req.ID
	if destID == "" {
		destID = id
	}
	if err := validDatasetID(destID); err != nil {
		return nil, err
	}
	if err := d.beginHandoff(); err != nil {
		return nil, err
	}
	err := m.replicate(ctx, d, strings.TrimRight(req.Target, "/"), destID)
	owner := d.finishHandoff(err == nil && req.Delete)
	if err != nil {
		m.log.Warn("dataset handoff failed", "dataset", id, "target", req.Target, "err", err)
		return nil, err
	}
	if owner {
		if cerr := d.ds.Close(); cerr != nil {
			m.log.Warn("closing dataset storage after handoff", "dataset", id, "err", cerr)
		}
		if d.dir != "" {
			if rerr := os.RemoveAll(d.dir); rerr != nil {
				m.log.Warn("removing dataset dir after handoff", "dataset", id, "err", rerr)
			}
		}
	}
	m.log.Info("dataset handed off", "dataset", id, "target", req.Target, "dest", destID, "deleted", owner)
	return d, nil
}

// replicate performs the remote side of a handoff while the caller holds
// the dataset's handoff slot: create the twin, stream the records, clean
// up the twin on a torn stream.
func (m *Manager) replicate(ctx context.Context, d *dsEntry, target, destID string) error {
	create := CreateDatasetRequest{Config: d.cfg, Backend: d.backend, ID: destID}
	body, err := json.Marshal(create)
	if err != nil {
		return err
	}
	cctx, cancel := context.WithTimeout(ctx, handoffHTTPTimeout)
	defer cancel()
	if err := handoffCall(cctx, http.MethodPost, target+"/v1/datasets", "application/json",
		bytes.NewReader(body), int64(len(body))); err != nil {
		return &httpError{http.StatusBadGateway, fmt.Sprintf("creating dataset %s on %s: %v", destID, target, err)}
	}

	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(d.ds.Dump(ctx, pw)) }()
	n := int64(d.cfg.N) * bmmc.RecordBytes
	if err := handoffCall(ctx, http.MethodPut, target+"/v1/datasets/"+destID+"/input",
		"application/octet-stream", pr, n); err != nil {
		pr.Close()
		// Best-effort rollback so the target is not left with a half-true
		// claim to the dataset's name.
		dctx, dcancel := context.WithTimeout(context.WithoutCancel(ctx), handoffHTTPTimeout)
		defer dcancel()
		if derr := handoffCall(dctx, http.MethodDelete, target+"/v1/datasets/"+destID, "", nil, 0); derr != nil {
			m.log.Warn("rolling back half-transferred dataset", "dataset", destID, "target", target, "err", derr)
		}
		return &httpError{http.StatusBadGateway, fmt.Sprintf("streaming dataset %s to %s: %v", d.id, target, err)}
	}
	return nil
}

// handoffCall performs one HTTP exchange of the handoff protocol,
// flattening non-2xx responses into errors. It uses net/http directly:
// package client depends on this package, so the dependency cannot point
// the other way.
func handoffCall(ctx context.Context, method, url, contentType string, body io.Reader, length int64) error {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if length > 0 {
		req.ContentLength = length
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
			msg = e.Error
		}
		return fmt.Errorf("%s (HTTP %d)", msg, resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
