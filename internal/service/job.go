package service

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	bmmc "repro"
	"repro/internal/obs"
)

// Job is one admitted permutation job: an execution target (either a
// private per-job Dataset with its own storage, or a handle on a shared
// daemon Dataset for chained jobs), a prepared plan from the manager's
// shared Engine, and a lifecycle the worker pool drives through the State
// machine. All mutable fields are guarded by mu; the cond gates the worker
// and the release path on in-flight input uploads.
type Job struct {
	id      string
	cfg     bmmc.Config
	backend string // BackendMem, BackendFile, or BackendSharded
	perm    bmmc.Permutation
	fuse    bool

	summary    *PlanSummary
	plan       *bmmc.Plan
	planShared bool // plan came from the manager's shared Engine cache

	ds      *bmmc.Dataset // execution target
	ownsDS  bool          // per-job storage: release closes and removes it
	dsEntry *dsEntry      // non-nil for dataset-handle jobs (shared storage)
	ticket  int           // execution-order ticket on dsEntry
	dir     string        // job-private storage directory ("" for mem/shared)
	ctx     context.Context
	cancel  context.CancelFunc
	events  *broadcaster
	hook    func(*Job, bmmc.PassEvent) // test instrumentation, run on the executing goroutine
	enqueue func(*Job)                 // manager callback releasing an await-input job to the workers

	inputTimer *time.Timer // expires a pending await-input job; nil otherwise

	statsBefore bmmc.Stats // dataset stats at claim time; the job's cost is the delta

	// Observability. traceBuf is the job's bounded span ring; sink routes
	// instrumented-backend samples into it while the job executes; mobs is
	// the manager's registry handle (nil only in bare-constructed tests).
	// The span bookkeeping below is touched by onProgress and finish only,
	// both on the job's executing worker goroutine.
	traceBuf     *obs.TraceBuffer
	sink         *ioSink
	mobs         *managerObs
	passStart    time.Time // wall-clock start of the current pass
	loadMark     time.Time // end of the previous memoryload event
	passStartIOs int       // absolute dataset parallel-I/O count at pass start
	lastKernel   string    // kernel of the most recent pass event

	mu          sync.Mutex
	cond        *sync.Cond // signaled when an upload finishes
	state       State
	errMsg      string
	pending     bool // awaiting input: holds an admission slot, not yet runnable
	uploading   bool
	downloads   int // output streams in flight; release waits for them
	inputLoaded bool
	claimed     bool // a worker started processing (planning or beyond)
	released    bool // storage closed and removed
	progress    *Progress
	report      *RunReport
	submitted   time.Time
	started     time.Time
	finished    time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Plan returns the job's prepared plan summary.
func (j *Job) Plan() *PlanSummary { return j.summary }

// Status snapshots the job as its wire representation.
func (j *Job) Status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		Config:      j.cfg,
		Backend:     j.backend,
		Plan:        j.summary,
		InputLoaded: j.inputLoaded,
		Released:    j.released,
		Submitted:   j.submitted,
	}
	if j.dsEntry != nil {
		st.Dataset = j.dsEntry.id
	}
	if j.progress != nil {
		p := *j.progress
		st.Progress = &p
	}
	if j.report != nil {
		r := *j.report
		st.Report = &r
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Subscribe attaches to the job's event stream. The first event a new
// subscriber should synthesize is the current state (see Status); the
// channel then carries transitions and progress until the terminal event,
// after which it closes.
func (j *Job) Subscribe() (<-chan Event, func()) { return j.events.subscribe() }

// setState transitions the job and publishes the state event; terminal
// states also stamp the finish time, close the event stream, and drop the
// job's active reference on its shared dataset (so deletes and new streams
// unblock the moment the chain's last job finishes). Callers hold j.mu.
func (j *Job) setStateLocked(s State) {
	wasTerminal := j.state.Terminal()
	j.state = s
	if s.Terminal() {
		j.finished = time.Now()
	}
	if j.mobs != nil {
		j.mobs.jobTransition(j, s, j.errMsg)
	}
	j.events.publish(Event{Type: EventState, JobID: j.id, State: s, Error: j.errMsg})
	if s.Terminal() {
		j.events.close()
		if j.dsEntry != nil && !wasTerminal {
			j.dsEntry.jobDone()
		}
	}
}

// onProgress is the job Permuter's WithProgress callback: it runs on the
// executing goroutine between counted parallel I/Os, updates the snapshot,
// and fans the event out without blocking.
func (j *Job) onProgress(ev bmmc.PassEvent) {
	p := &Progress{Pass: ev.Pass, Passes: ev.Passes, Kind: ev.Kind, Load: ev.Load, Loads: ev.Loads}
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
	j.events.publish(Event{Type: EventProgress, JobID: j.id, Progress: p})
	j.observePass(ev)
	if j.hook != nil {
		j.hook(j, ev)
	}
}

// observePass turns the progress event stream into trace spans and exact
// per-pass I/O attribution. Events fire on the executing goroutine at
// pass start (Load == 0) and after every completed memoryload, with the
// final one (Load == Loads) after the pass's last counted write — so
// dataset Stats snapshots at the boundaries delta to exactly the pass's
// parallel I/Os (jobs on one dataset are turnstile-serialized).
func (j *Job) observePass(ev bmmc.PassEvent) {
	if j.traceBuf == nil {
		return
	}
	now := time.Now()
	j.lastKernel = ev.Kernel
	if ev.Load == 0 {
		j.passStart, j.loadMark = now, now
		j.passStartIOs = j.ds.Stats().ParallelIOs()
		return
	}
	j.traceBuf.Add(obs.Span{
		Name: obs.SpanLoad, Kind: ev.Kind, Kernel: ev.Kernel,
		Pass: ev.Pass, Load: ev.Load, Start: j.loadMark, End: now,
	})
	j.loadMark = now
	if ev.Load != ev.Loads {
		return
	}
	ios := j.ds.Stats().ParallelIOs() - j.passStartIOs
	span := obs.Span{
		Name: obs.SpanPass, Kind: ev.Kind, Kernel: ev.Kernel,
		Pass: ev.Pass, IOs: ios, Start: j.passStart, End: now,
	}
	j.traceBuf.Add(span)
	j.passStartIOs += ios
	if j.mobs != nil {
		j.mobs.passIOs.With(j.summary.Class, ev.Kernel).Add(float64(ios))
	}
	j.events.publish(Event{Type: EventSpan, JobID: j.id, Span: &span})
}

// Trace snapshots the job's span ring as the wire trace. The trace id is
// the job id; the cluster layer reuses it when stitching worker sub-job
// spans under a striped job.
func (j *Job) Trace() *JobTrace {
	tr := &JobTrace{TraceID: j.id, JobID: j.id, Spans: []obs.Span{}}
	if j.traceBuf != nil {
		spans, dropped := j.traceBuf.Snapshot()
		tr.Spans, tr.Dropped = spans, dropped
	}
	return tr
}

// Upload replaces the job's stored records with N records read from r in
// the 16-byte wire format. Only queued jobs accept input — once a worker
// claims the job the data is sealed — and one upload may be in flight at a
// time. ctx is the transport context (the HTTP request); the job's own
// context also aborts the read when the job is canceled mid-upload.
func (j *Job) Upload(ctx context.Context, r io.Reader) error {
	if j.dsEntry != nil {
		return &httpError{http.StatusConflict,
			"job " + j.id + " runs on dataset " + j.dsEntry.id + ": upload via PUT /v1/datasets/" + j.dsEntry.id + "/input before submitting"}
	}
	j.mu.Lock()
	if j.state != StateQueued || j.claimed {
		st := j.state
		j.mu.Unlock()
		return &httpError{http.StatusConflict, "job " + j.id + " is " + string(st) + ": input accepted only while queued"}
	}
	if j.uploading {
		j.mu.Unlock()
		return &httpError{http.StatusConflict, "job " + j.id + " already has an upload in flight"}
	}
	j.uploading = true
	j.mu.Unlock()

	loadCtx, cancelLoad := context.WithCancel(ctx)
	stop := context.AfterFunc(j.ctx, cancelLoad) // job cancellation aborts the read too
	err := j.ds.Load(loadCtx, r)
	stop()
	cancelLoad()

	j.mu.Lock()
	j.uploading = false
	release := false
	if err == nil {
		j.inputLoaded = true
		if j.pending { // await-input job: the upload makes it runnable
			j.pending = false
			release = true
			if j.inputTimer != nil {
				j.inputTimer.Stop()
			}
		}
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	if release {
		j.enqueue(j)
	}
	if err != nil {
		return &httpError{http.StatusBadRequest, "loading input: " + err.Error()}
	}
	return nil
}

// outputReadyLocked reports whether the job currently has downloadable
// output: it must be done, own its storage (dataset-handle jobs serve
// output through the dataset resource), and not be released. Callers hold
// j.mu.
func (j *Job) outputReadyLocked() error {
	if j.dsEntry != nil {
		return &httpError{http.StatusConflict,
			"job " + j.id + " runs on dataset " + j.dsEntry.id + ": download via GET /v1/datasets/" + j.dsEntry.id + "/output"}
	}
	if j.state != StateDone {
		return &httpError{http.StatusConflict, "job " + j.id + " is " + string(j.state) + ": output available only when done"}
	}
	if j.released {
		return &httpError{http.StatusGone, "job " + j.id + " storage has been released"}
	}
	return nil
}

// outputReady is outputReadyLocked for external probes (the HTTP layer
// checks before committing response headers).
func (j *Job) outputReady() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outputReadyLocked()
}

// Download streams the job's permuted records to w in the wire format.
// Only done jobs whose storage has not been released have output; the
// stream registers itself so a concurrent release (DELETE, Shutdown)
// waits for it rather than closing storage mid-read.
func (j *Job) Download(ctx context.Context, w io.Writer) error {
	j.mu.Lock()
	if err := j.outputReadyLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	j.downloads++
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		j.downloads--
		j.cond.Broadcast()
		j.mu.Unlock()
	}()
	return j.ds.Dump(ctx, w)
}

// waitIdleLocked blocks until no upload or download is in flight. Callers
// hold j.mu.
func (j *Job) waitIdleLocked() {
	for j.uploading || j.downloads > 0 {
		j.cond.Wait()
	}
}
