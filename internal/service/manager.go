package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	bmmc "repro"
	"repro/internal/obs"
	"repro/internal/pdm"
)

// Defaults for ManagerConfig zero values.
const (
	DefaultWorkers          = 2
	DefaultQueueDepth       = 16
	DefaultShards           = 2
	DefaultPlanCacheEntries = 64
	DefaultInputWait        = 2 * time.Minute
)

// ManagerConfig sizes the job manager. The zero value is usable: two
// workers, a 16-job admission queue, storage under a private temporary
// directory, and a 64-entry shared plan cache.
type ManagerConfig struct {
	// Workers is the bounded worker pool size — the number of jobs
	// executing concurrently, and therefore the daemon's disk concurrency:
	// each running job drives the full parallel I/O of its own D-disk
	// system. Zero selects DefaultWorkers.
	Workers int
	// QueueDepth bounds the admission queue. A submit that would exceed it
	// fails with ErrQueueFull (HTTP 429), the daemon's backpressure signal.
	// Zero selects DefaultQueueDepth.
	QueueDepth int
	// Dir is the base directory for file- and sharded-backend job storage.
	// Empty means a private temporary directory, removed at Shutdown.
	Dir string
	// Shards is how many shard directories a BackendSharded job spreads its
	// disks over. Zero selects DefaultShards.
	Shards int
	// Seed drives job-id generation (ids are sequence-plus-nonce, so the
	// sequence stays unique regardless of the seed).
	Seed int64
	// PlanCacheEntries bounds the shared plan cache (LRU eviction). Zero
	// selects DefaultPlanCacheEntries; negative disables sharing.
	PlanCacheEntries int
	// InputWait is how long an await-input job may hold its admission slot
	// before any upload completes; past it the job is canceled and the
	// slot freed, so idle submitters cannot wedge the queue for other
	// tenants. Zero selects DefaultInputWait; negative waits forever.
	InputWait time.Duration
	// Logger receives structured lifecycle logs; nil discards them.
	Logger *slog.Logger
	// WrapBackend, when set, wraps every backend this manager provisions
	// (per-job and dataset storage alike) before first use — the seam the
	// chaos suites inject fault and latency adversaries through, for this
	// package's tests and for cluster-level tests that poison one worker's
	// storage.
	WrapBackend func(kind string, be bmmc.Backend) bmmc.Backend

	// hook, when set by tests, runs on each job's executing goroutine after
	// every progress event — deterministic instrumentation for cancellation
	// and race tests.
	hook func(*Job, bmmc.PassEvent)
}

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; the HTTP layer renders it as 429 Too Many Requests.
var ErrQueueFull = &httpError{http.StatusTooManyRequests, "job queue full"}

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = &httpError{http.StatusServiceUnavailable, "daemon is shutting down"}

// Manager owns the daemon's job table, the dataset table, the FIFO
// admission queue, the bounded worker pool, the one shared execution
// Engine (and with it the daemon-wide plan cache), and the aggregate
// metrics.
type Manager struct {
	cfg     ManagerConfig
	log     *slog.Logger
	obs     *managerObs
	baseDir string
	ownsDir bool

	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup

	eng *bmmc.Engine // one stateless engine drives every job's dataset

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	order    []string // submission order, for listing
	datasets map[string]*dsEntry
	dsOrder  []string // creation order, for listing
	queueLen int      // reserved admission-queue slots
	seq      int
	rng      *rand.Rand

	submitted int
	created   int // datasets ever created
	agg       struct {
		passes, ios, reads, writes int
	}
}

// NewManager builds the manager and starts its worker pool.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.PlanCacheEntries == 0 {
		cfg.PlanCacheEntries = DefaultPlanCacheEntries
	}
	if cfg.InputWait == 0 {
		cfg.InputWait = DefaultInputWait
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	m := &Manager{
		cfg:      cfg,
		log:      log,
		queue:    make(chan *Job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		jobs:     make(map[string]*Job),
		datasets: make(map[string]*dsEntry),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		eng:      bmmc.NewEngine(bmmc.WithPlanCache(cfg.PlanCacheEntries)),
	}
	m.baseDir = cfg.Dir
	if m.baseDir == "" {
		dir, err := os.MkdirTemp("", "bmmcd-")
		if err != nil {
			return nil, fmt.Errorf("service: creating storage dir: %w", err)
		}
		m.baseDir, m.ownsDir = dir, true
	} else if err := os.MkdirAll(m.baseDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating storage dir: %w", err)
	}
	m.obs = newManagerObs(m)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit validates, plans (through the shared Engine's plan cache),
// binds the job to its execution target — a freshly provisioned per-job
// Dataset, or the shared daemon Dataset named by req.Dataset — and
// enqueues it. It returns the admitted job, whose Plan summary quotes
// class, pass structure, and cost bounds before a single I/O happens, or
// ErrQueueFull when the admission queue is at capacity. Jobs referencing
// one dataset execute in submission order, so chained permutations
// compose the way they were submitted.
func (m *Manager) Submit(req SubmitRequest) (*Job, error) {
	p, err := bmmc.ParsePermutation([]byte(req.Perm))
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	fuse := req.Fuse == nil || *req.Fuse

	var entry *dsEntry
	backend := req.Backend
	cfg := req.Config
	if req.Dataset != "" {
		// Dataset-handle job: the dataset supplies storage and geometry.
		if req.Backend != "" {
			return nil, &httpError{http.StatusBadRequest, "dataset jobs take their storage from the dataset: leave backend empty"}
		}
		if req.AwaitInput {
			return nil, &httpError{http.StatusBadRequest, "dataset jobs take their input from the dataset: await_input is not applicable"}
		}
		var ok bool
		entry, ok = m.Dataset(req.Dataset)
		if !ok {
			return nil, errUnknownDataset(req.Dataset)
		}
		if (cfg != bmmc.Config{}) && cfg != entry.cfg {
			return nil, &httpError{http.StatusBadRequest,
				fmt.Sprintf("request geometry %v does not match dataset %s geometry %v (omit config to inherit it)", cfg, entry.id, entry.cfg)}
		}
		cfg, backend = entry.cfg, entry.backend
	} else {
		if err := cfg.Validate(); err != nil {
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
		if backend == "" {
			backend = BackendMem
		}
		if backend != BackendMem && backend != BackendFile && backend != BackendSharded {
			return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("unknown backend %q (want mem, file, or sharded)", backend)}
		}
	}

	pl, err := m.eng.Plan(cfg, p, bmmc.WithFusion(fuse))
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	shared := pl.Cached()

	// Reserve an admission slot before paying for storage provisioning.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if m.queueLen >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.queueLen++
	m.seq++
	id := fmt.Sprintf("j%04d-%06x", m.seq, m.rng.Uint32()&0xffffff)
	m.mu.Unlock()

	// The job outlives the submitting RPC; its root is canceled by
	// CancelJob or manager shutdown, not by the submitter hanging up.
	//lint:allow ctxio -- job-lifetime root; canceled via CancelJob/Close
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:         id,
		cfg:        cfg,
		backend:    backend,
		perm:       p,
		fuse:       fuse,
		summary:    Summarize(pl),
		plan:       pl,
		planShared: shared,
		ctx:        ctx,
		cancel:     cancel,
		events:     newBroadcaster(),
		hook:       m.cfg.hook,
		enqueue:    m.enqueue,
		state:      StateQueued,
		pending:    req.AwaitInput,
		submitted:  time.Now(),
		mobs:       m.obs,
		traceBuf:   obs.NewTraceBuffer(id, 0),
	}
	j.cond = sync.NewCond(&j.mu)

	if entry != nil {
		// Bind to the shared dataset: take an execution-order ticket and an
		// active reference. No storage is provisioned and no data moves.
		ticket, err := entry.bind()
		if err != nil {
			cancel()
			m.mu.Lock()
			m.queueLen--
			m.mu.Unlock()
			return nil, err
		}
		j.ds, j.dsEntry, j.ticket = entry.ds, entry, ticket
		j.sink = entry.sink
		j.inputLoaded = entry.Status().InputLoaded
	} else {
		be, dir, sink, err := m.provision("job-"+id, backend)
		if err == nil {
			j.dir = dir
			j.ownsDS = true
			j.sink = sink
			j.ds, err = bmmc.CreateDataset(cfg, bmmc.WithBackend(be))
		}
		if err != nil {
			cancel()
			if dir != "" {
				os.RemoveAll(dir)
			}
			m.mu.Lock()
			m.queueLen--
			m.mu.Unlock()
			// A provisioning failure is the daemon's problem (full volume,
			// permissions), not the caller's: surface it as a server error.
			return nil, &httpError{http.StatusInternalServerError, "provisioning job storage: " + err.Error()}
		}
	}

	m.mu.Lock()
	if m.closed { // shutdown raced the binding above
		m.queueLen--
		m.mu.Unlock()
		cancel()
		if j.dsEntry != nil {
			j.dsEntry.retire(j.ticket) // hand the unused ticket through
			j.dsEntry.jobDone()
		} else {
			j.ds.Close()
			if j.dir != "" {
				os.RemoveAll(j.dir)
			}
		}
		return nil, ErrShuttingDown
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.submitted++
	m.mu.Unlock()
	m.obs.jobTransition(j, StateQueued, "") // admission is the first audited transition
	if !req.AwaitInput {
		m.queue <- j // cannot block: a slot was reserved above
	} else if m.cfg.InputWait > 0 {
		// The job is already visible to Cancel/Shutdown, so arm the timer
		// under its lock — and only if nothing canceled it in the window.
		wait := m.cfg.InputWait
		j.mu.Lock()
		if j.state == StateQueued && j.pending {
			j.inputTimer = time.AfterFunc(wait, func() { m.expirePending(j, wait) })
		}
		j.mu.Unlock()
	}
	m.log.Info("job queued", "job", id, "backend", backend, "dataset", req.Dataset,
		"config", cfg.String(), "class", j.summary.Class, "passes", j.summary.PassCount,
		"cost_ios", j.summary.CostIOs, "plan_shared", shared, "await_input", req.AwaitInput)
	return j, nil
}

// enqueue hands an await-input job to the workers once its upload lands.
// The job kept its admission reservation, so the send cannot block; after
// Shutdown the send is skipped (the job was already canceled and will be
// released by the drain).
func (m *Manager) enqueue(j *Job) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	m.queue <- j
}

// provision creates the storage a backend kind needs, under a uniquely
// named directory for file-backed kinds ("" for mem). Every backend is
// wrapped with the timing instrumentation outermost — after any
// WrapBackend chaos adversary — so the latency histograms measure the
// full storage path a job actually experiences. The returned sink routes
// the instrumented samples to whichever job runs on the backend.
func (m *Manager) provision(name, kind string) (bmmc.Backend, string, *ioSink, error) {
	var be bmmc.Backend
	var dir string
	switch kind {
	case BackendFile:
		dir = filepath.Join(m.baseDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, "", nil, err
		}
		be = bmmc.FileBackend(dir)
	case BackendSharded:
		dir = filepath.Join(m.baseDir, name)
		shards := make([]string, m.cfg.Shards)
		for i := range shards {
			shards[i] = filepath.Join(dir, fmt.Sprintf("shard-%02d", i))
			if err := os.MkdirAll(shards[i], 0o755); err != nil {
				return nil, "", nil, err
			}
		}
		be = bmmc.ShardedBackend(shards...)
	default:
		be = bmmc.MemBackend()
	}
	if m.cfg.WrapBackend != nil {
		be = m.cfg.WrapBackend(kind, be)
	}
	sink := &ioSink{}
	be = pdm.InstrumentBackend(be, m.obs.opObserver(sink))
	return be, dir, sink, nil
}

// CreateDataset validates, provisions storage, and registers a new shared
// dataset holding the canonical records until an upload replaces them.
func (m *Manager) CreateDataset(req CreateDatasetRequest) (*dsEntry, error) {
	if err := req.Config.Validate(); err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	backend := req.Backend
	if backend == "" {
		backend = BackendMem
	}
	if backend != BackendMem && backend != BackendFile && backend != BackendSharded {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("unknown backend %q (want mem, file, or sharded)", backend)}
	}
	if req.Stripes > 1 {
		return nil, &httpError{http.StatusBadRequest, "striped datasets exist only behind a cluster coordinator: a single daemon holds whole datasets"}
	}
	if err := validDatasetID(req.ID); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	id := req.ID
	if id == "" {
		m.seq++
		id = fmt.Sprintf("d%04d-%06x", m.seq, m.rng.Uint32()&0xffffff)
	} else if old, ok := m.datasets[id]; ok && !old.Status().Released {
		m.mu.Unlock()
		return nil, &httpError{http.StatusConflict, fmt.Sprintf("dataset %q already exists", id)}
	}
	m.mu.Unlock()

	be, dir, sink, err := m.provision("ds-"+id, backend)
	var ds *bmmc.Dataset
	if err == nil {
		ds, err = bmmc.CreateDataset(req.Config, bmmc.WithBackend(be))
	}
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, &httpError{http.StatusInternalServerError, "provisioning dataset storage: " + err.Error()}
	}
	entry := newDSEntry(id, backend, req.Config, ds, dir)
	entry.sink = sink

	m.mu.Lock()
	err = nil
	switch old, exists := m.datasets[id]; {
	case m.closed: // shutdown raced the provisioning above
		err = ErrShuttingDown
	case exists && !old.Status().Released: // a same-id create raced us
		err = &httpError{http.StatusConflict, fmt.Sprintf("dataset %q already exists", id)}
	case exists: // re-creating a deleted id: replace, keep its list slot
		m.datasets[id] = entry
	default:
		m.datasets[id] = entry
		m.dsOrder = append(m.dsOrder, id)
	}
	if err == nil {
		m.created++
	}
	m.mu.Unlock()
	if err != nil {
		ds.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	m.log.Info("dataset created", "dataset", id, "backend", backend, "config", req.Config.String())
	return entry, nil
}

// validDatasetID vets a caller-supplied dataset id: it becomes a path
// segment in URLs and in provisioned directory names, so it is limited to
// a conservative charset.
func validDatasetID(id string) error {
	if id == "" {
		return nil
	}
	if len(id) > 128 {
		return &httpError{http.StatusBadRequest, "dataset id exceeds 128 bytes"}
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return &httpError{http.StatusBadRequest, fmt.Sprintf("dataset id %q: only letters, digits, '-', '_', '.' are allowed", id)}
		}
	}
	return nil
}

// Dataset looks a dataset up by id.
func (m *Manager) Dataset(id string) (*dsEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.datasets[id]
	return d, ok
}

// Datasets returns every dataset in creation order.
func (m *Manager) Datasets() []*dsEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*dsEntry, 0, len(m.dsOrder))
	for _, id := range m.dsOrder {
		out = append(out, m.datasets[id])
	}
	return out
}

// DeleteDataset removes a dataset: refused with 409 while jobs are bound
// to it, waits for in-flight uploads and downloads to drain, then closes
// the storage and removes the provisioned directory. Deleting an
// already-deleted dataset is a no-op; the metadata stays queryable.
func (m *Manager) DeleteDataset(id string) (*dsEntry, error) {
	d, ok := m.Dataset(id)
	if !ok {
		return nil, errUnknownDataset(id)
	}
	owner, err := d.tryRelease()
	if err != nil {
		return nil, err
	}
	if !owner {
		return d, nil
	}
	if err := d.ds.Close(); err != nil {
		m.log.Warn("closing dataset storage", "dataset", id, "err", err)
	}
	if d.dir != "" {
		if err := os.RemoveAll(d.dir); err != nil {
			m.log.Warn("removing dataset dir", "dataset", id, "err", err)
		}
	}
	m.log.Info("dataset deleted", "dataset", id)
	return d, nil
}

// expirePending cancels an await-input job whose upload never arrived
// within the configured wait, freeing its admission slot and storage. A
// job that became runnable (or was already canceled) is left alone.
func (m *Manager) expirePending(j *Job, wait time.Duration) {
	j.mu.Lock()
	if j.state != StateQueued || !j.pending {
		j.mu.Unlock()
		return
	}
	j.errMsg = fmt.Sprintf("no input received within %v", wait)
	j.setStateLocked(StateCanceled)
	j.pending = false
	j.cancel()
	j.mu.Unlock()
	m.mu.Lock()
	m.queueLen--
	m.mu.Unlock()
	m.release(j)
	m.log.Info("await-input job expired", "job", j.id, "wait", wait.String())
}

// Job looks a job up by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// worker drains the admission queue until Shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case j := <-m.queue:
			m.mu.Lock()
			m.queueLen--
			m.mu.Unlock()
			m.run(j)
		}
	}
}

// run drives one dequeued job through planning, execution, and its
// terminal state. A job canceled while queued is only released here —
// never planned, never executed. Dataset-handle jobs first wait for their
// execution-order ticket, so a chain on one dataset runs in submission
// order no matter how many workers race, and always retire the ticket on
// the way out.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	j.waitIdleLocked()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		// Never executed: hand the unused execution ticket through so
		// later jobs on the dataset are not blocked, and release without
		// pinning this worker behind the dataset's running predecessors.
		if j.dsEntry != nil {
			j.dsEntry.retire(j.ticket)
		}
		m.release(j)
		return
	}
	j.claimed = true
	j.started = time.Now()
	j.setStateLocked(StatePlanning)
	j.mu.Unlock()
	m.obs.queueWait.Observe(j.started.Sub(j.submitted).Seconds())

	// Chained jobs wait for their execution-order ticket here — after the
	// claim, so a cancellation during the wait still resolves through the
	// ctx check below — and always retire the ticket on the way out.
	if j.dsEntry != nil {
		j.dsEntry.waitTurn(j.ticket)
		defer j.dsEntry.retire(j.ticket)
	}
	// The job's cost is the delta its run adds to the dataset's counters —
	// snapshot after winning the turnstile, so chained predecessors'
	// I/O is excluded exactly (for per-job storage the dataset is fresh
	// and the delta is the total). finish always subtracts this snapshot,
	// including on the canceled-before-execution path below.
	j.statsBefore = j.ds.Stats()
	// Per-pass attribution starts from the same snapshot; finish charges
	// any residual I/O past the last pass boundary to the job's counters.
	j.passStartIOs = j.statsBefore.ParallelIOs()
	if j.sink != nil {
		// Route the backend's io spans into this job's trace for the
		// duration of the run. Jobs on one dataset are serialized by the
		// turnstile above, so the sink has one owner at a time.
		j.sink.buf.Store(j.traceBuf)
		defer j.sink.buf.Store(nil)
	}

	// The plan itself was prepared at submit time through the shared
	// Engine; the planning state covers claiming the job, sealing its
	// input, and binding the plan for execution.
	if err := j.ctx.Err(); err != nil {
		m.finish(j, nil, err)
		return
	}
	j.mu.Lock()
	j.setStateLocked(StateRunning)
	j.mu.Unlock()
	m.log.Info("job running", "job", j.id, "input_loaded", j.Status().InputLoaded)

	if j.dsEntry != nil {
		j.dsEntry.ran()
	}
	rep, err := m.eng.Execute(j.ctx, j.plan, j.ds, bmmc.WithProgress(j.onProgress))
	m.finish(j, rep, err)
}

// finish records a processed job's outcome: its terminal state, its run
// report, and its contribution to the aggregate I/O metrics. Jobs that did
// not complete have no output, so their storage is released immediately;
// done jobs keep storage until downloaded and deleted (or Shutdown).
func (m *Manager) finish(j *Job, rep *bmmc.Report, err error) {
	// The job's cost is the delta over the dataset's counters at claim
	// time: exact because jobs on one dataset are serialized by the ticket
	// turnstile (and per-job datasets see only their own job).
	stats := j.ds.Stats()
	// Charge any I/O past the last pass-boundary event (a pass aborted by
	// cancellation, or a plan with no progress events) to the pass counter
	// under the last seen kernel, so the job's bmmc_pass_ios total equals
	// its measured parallel-I/O delta exactly.
	if resid := stats.ParallelIOs() - j.passStartIOs; resid > 0 {
		kernel := j.lastKernel
		if kernel == "" {
			kernel = "none"
		}
		m.obs.passIOs.With(j.summary.Class, kernel).Add(float64(resid))
	}
	stats.ParallelReads -= j.statsBefore.ParallelReads
	stats.ParallelWrites -= j.statsBefore.ParallelWrites
	stats.BlocksRead -= j.statsBefore.BlocksRead
	stats.BlocksWritten -= j.statsBefore.BlocksWritten
	j.mu.Lock()
	switch {
	case err == nil:
		j.report = &RunReport{
			Passes:         rep.Passes,
			ParallelIOs:    rep.ParallelIOs,
			ParallelReads:  stats.ParallelReads,
			ParallelWrites: stats.ParallelWrites,
			BlocksRead:     stats.BlocksRead,
			BlocksWritten:  stats.BlocksWritten,
			PlanShared:     j.planShared,
		}
		j.setStateLocked(StateDone)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || j.ctx.Err() != nil:
		j.errMsg = err.Error()
		j.setStateLocked(StateCanceled)
	default:
		j.errMsg = err.Error()
		j.setStateLocked(StateFailed)
	}
	state := j.state
	j.mu.Unlock()

	m.mu.Lock()
	m.agg.ios += stats.ParallelIOs()
	m.agg.reads += stats.ParallelReads
	m.agg.writes += stats.ParallelWrites
	if rep != nil {
		m.agg.passes += rep.Passes
	}
	m.mu.Unlock()

	if state == StateDone {
		// Export the job's theoretical brackets: cumulative Thm 3 lower and
		// Thm 21 upper bounds over completed jobs, so measured/theory stays
		// a one-line PromQL ratio at any aggregation window.
		m.obs.bounds.With("lower").Add(j.summary.LowerBoundIOs)
		m.obs.bounds.With("upper").Add(float64(j.summary.UpperBoundIOs))
		m.log.Info("job done", "job", j.id, "passes", rep.Passes, "parallel_ios", rep.ParallelIOs)
		if j.dsEntry != nil {
			// Nothing to download from the job itself; the chained output
			// lives on the dataset. Mark the job released immediately.
			m.release(j)
		}
	} else {
		m.log.Info("job finished", "job", j.id, "state", string(state), "err", j.Status().Error)
		m.release(j)
	}
}

// Cancel stops a job: a queued job goes terminal immediately and is never
// planned; a claimed job's context is canceled so execution aborts between
// memoryloads; a terminal job has its storage released. The job's metadata
// stays queryable in every case.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, ok := m.Job(id)
	if !ok {
		return nil, errUnknownJob(id)
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued && !j.claimed:
		j.errMsg = "canceled while queued"
		j.setStateLocked(StateCanceled)
		wasPending := j.pending
		j.pending = false
		if j.inputTimer != nil {
			j.inputTimer.Stop()
		}
		j.cancel() // aborts any in-flight upload promptly
		j.mu.Unlock()
		m.log.Info("job canceled while queued", "job", id)
		if wasPending {
			// Never handed to the workers: free its admission slot and
			// release its storage here.
			m.mu.Lock()
			m.queueLen--
			m.mu.Unlock()
			m.release(j)
		}
		// Otherwise storage is released when a worker dequeues the job (or
		// at Shutdown); the worker sees the terminal state and never plans
		// it.
	case !j.state.Terminal():
		j.cancel()
		j.mu.Unlock()
		m.log.Info("job cancellation requested", "job", id, "state", string(j.State()))
	default:
		j.mu.Unlock()
		m.release(j)
		m.log.Info("terminal job released", "job", id)
	}
	return j, nil
}

// release retires a job's hold on storage. For per-job storage it closes
// the Dataset and removes the private directory; for dataset-handle jobs
// the shared dataset stays untouched (its lifecycle is DeleteDataset's).
// It waits for in-flight uploads and downloads to drain first (marking the
// job released up front so no new stream can start) and is idempotent.
func (m *Manager) release(j *Job) {
	j.mu.Lock()
	if j.released {
		j.mu.Unlock()
		return
	}
	j.released = true // outputReadyLocked now refuses new downloads
	j.waitIdleLocked()
	j.mu.Unlock()
	j.cancel()
	if !j.ownsDS {
		return
	}
	if err := j.ds.Close(); err != nil {
		m.log.Warn("closing job storage", "job", j.id, "err", err)
	}
	if j.dir != "" {
		if err := os.RemoveAll(j.dir); err != nil {
			m.log.Warn("removing job dir", "job", j.id, "err", err)
		}
	}
}

// Registry exposes the manager's Prometheus registry; the HTTP layer
// serves it at GET /metrics and the cluster coordinator scrapes it.
func (m *Manager) Registry() *obs.Registry { return m.obs.reg }

// Metrics snapshots the daemon-wide gauges.
func (m *Manager) Metrics() *Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := &Metrics{
		JobsSubmitted: m.submitted,
		QueueDepth:    m.queueLen,
		QueueCapacity: m.cfg.QueueDepth,
		Workers:       m.cfg.Workers,

		Passes:         m.agg.passes,
		ParallelIOs:    m.agg.ios,
		ParallelReads:  m.agg.reads,
		ParallelWrites: m.agg.writes,
	}
	mt.DatasetsCreated = m.created
	for _, d := range m.datasets {
		st := d.Status()
		if !st.Released {
			mt.DatasetsActive++
		}
		mt.DatasetJobsRun += st.JobsRun
	}
	cs := m.eng.CacheStats()
	mt.PlanCacheHits, mt.PlanCacheMisses, mt.PlanCacheSize = cs.Hits, cs.Misses, cs.Size
	if total := cs.Hits + cs.Misses; total > 0 {
		mt.PlanCacheRate = float64(cs.Hits) / float64(total)
	}
	for _, j := range m.jobs {
		switch j.State() {
		case StateQueued:
			mt.JobsQueued++
		case StatePlanning:
			mt.JobsPlanning++
		case StateRunning:
			mt.JobsRunning++
		case StateDone:
			mt.JobsDone++
		case StateFailed:
			mt.JobsFailed++
		case StateCanceled:
			mt.JobsCanceled++
		}
	}
	return mt
}

// Shutdown drains the daemon: no new submissions are admitted, queued jobs
// are canceled, and running jobs get until ctx's deadline to finish before
// their contexts are canceled. All job storage is released and all shared
// datasets are drained (in-flight downloads finish) and removed before
// return.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	datasets := make([]*dsEntry, 0, len(m.datasets))
	for _, d := range m.datasets {
		datasets = append(datasets, d)
	}
	m.mu.Unlock()

	for _, j := range jobs {
		j.mu.Lock()
		if j.state == StateQueued && !j.claimed {
			j.errMsg = "daemon shutting down"
			j.setStateLocked(StateCanceled)
			j.pending = false
			if j.inputTimer != nil {
				j.inputTimer.Stop()
			}
			j.cancel()
		}
		j.mu.Unlock()
	}
	close(m.quit)

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		m.log.Warn("drain deadline reached; canceling running jobs")
		for _, j := range jobs {
			j.cancel()
		}
		<-done
	}

	for _, j := range jobs {
		m.release(j)
	}
	// Every job is terminal, so each dataset's active count is zero:
	// tryRelease only has to wait out in-flight download streams, exactly
	// the way job release drains its data plane.
	for _, d := range datasets {
		if owner, err := d.tryRelease(); err == nil && owner {
			d.ds.Close()
			if d.dir != "" {
				os.RemoveAll(d.dir)
			}
		}
	}
	if m.ownsDir {
		os.RemoveAll(m.baseDir)
	}
	m.log.Info("job manager stopped", "jobs_processed", len(jobs), "datasets", len(datasets))
}
