package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	bmmc "repro"
)

// testConfig is small enough that a mem-backed job completes in
// milliseconds but still spans multiple memoryloads and passes.
var testConfig = bmmc.Config{N: 4096, D: 4, B: 8, M: 256}

func newTestManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func submitReq(t *testing.T, cfg bmmc.Config, p bmmc.Permutation) SubmitRequest {
	t.Helper()
	return SubmitRequest{Config: cfg, Perm: string(bmmc.MarshalPermutation(p))}
}

// waitTerminal polls until the job leaves the live states.
func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.State(); s.Terminal() {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in state %s", j.ID(), j.State())
	return ""
}

// encodeRecords renders records in the 16-byte wire format.
func encodeRecords(recs []bmmc.Record) []byte {
	buf := make([]byte, len(recs)*bmmc.RecordBytes)
	for i, r := range recs {
		r.Encode(buf[i*bmmc.RecordBytes:])
	}
	return buf
}

// gatedReader serves data but blocks the first Read until released,
// keeping a job's upload — and therefore the worker that claimed it — in
// flight for as long as a test needs.
type gatedReader struct {
	release chan struct{}
	data    io.Reader
	once    sync.Once
}

func (g *gatedReader) Read(p []byte) (int, error) {
	g.once.Do(func() { <-g.release })
	return g.data.Read(p)
}

// blockerConfig returns a single-worker ManagerConfig whose hook parks the
// first job that executes (deterministically the first submitted) inside
// its first progress callback until release is closed. Submitting a job
// and then holding it there pins the worker so later submissions stay
// queued for as long as a test needs.
func blockerConfig(t *testing.T, queueDepth int) (ManagerConfig, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	var first sync.Once
	cfg := ManagerConfig{Workers: 1, QueueDepth: queueDepth, Dir: t.TempDir()}
	cfg.hook = func(j *Job, ev bmmc.PassEvent) {
		first.Do(func() { <-release })
	}
	return cfg, release
}

func TestJobLifecycleDone(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Workers: 1, QueueDepth: 4})
	p := bmmc.BitReversal(testConfig.LgN())
	j, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Plan(); got.Class != "BMMC" || got.PassCount < 1 || got.CostIOs != got.PassCount*testConfig.PassIOs() {
		t.Errorf("plan summary unexpected: %+v", got)
	}
	if s := waitTerminal(t, j); s != StateDone {
		t.Fatalf("job finished %s (%s), want done", s, j.Status().Error)
	}
	st := j.Status()
	if st.Report == nil || st.Report.ParallelIOs != j.Plan().CostIOs {
		t.Fatalf("report %+v does not match planned cost %d", st.Report, j.Plan().CostIOs)
	}
	if st.Started == nil || st.Finished == nil {
		t.Errorf("terminal job missing timestamps: %+v", st)
	}

	// The permuted output must be exactly what a direct Permute produces:
	// the canonical record of source x now sits at address p(x).
	var out bytes.Buffer
	if err := j.Download(context.Background(), &out); err != nil {
		t.Fatal(err)
	}
	data := out.Bytes()
	for x := uint64(0); x < uint64(testConfig.N); x++ {
		got := bmmc.DecodeRecord(data[p.Apply(x)*bmmc.RecordBytes:])
		if got.Key != x {
			t.Fatalf("address %d holds key %d, want %d", p.Apply(x), got.Key, x)
		}
	}

	mt := m.Metrics()
	if mt.JobsDone != 1 || mt.ParallelIOs != st.Report.ParallelIOs || mt.Passes != st.Report.Passes {
		t.Errorf("metrics do not aggregate the job's stats: %+v vs report %+v", mt, st.Report)
	}
}

// TestUploadedDataRoundTrip pins the data plane plus the worker's upload
// gate: the upload starts while the job is queued behind a pinned worker,
// the worker then claims the job mid-upload and must wait for the data to
// finish streaming before planning.
func TestUploadedDataRoundTrip(t *testing.T) {
	cfg, release := blockerConfig(t, 4)
	m := newTestManager(t, cfg)
	p := bmmc.GrayCode(testConfig.LgN())

	if _, err := m.Submit(submitReq(t, testConfig, bmmc.BitReversal(testConfig.LgN()))); err != nil {
		t.Fatal(err) // the blocker pinning the worker
	}
	recs := make([]bmmc.Record, testConfig.N)
	for i := range recs {
		recs[i] = bmmc.Record{Key: uint64(i) * 2654435761, Tag: uint64(i)}
	}
	j, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	gate := &gatedReader{release: make(chan struct{}), data: bytes.NewReader(encodeRecords(recs))}
	uploadDone := make(chan error, 1)
	go func() { uploadDone <- j.Upload(context.Background(), gate) }()

	// Wait until the upload is registered, then free the worker: it will
	// claim j and park on the upload gate until the data finishes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		uploading := j.uploading
		j.mu.Unlock()
		if uploading {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upload never started")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	time.Sleep(10 * time.Millisecond) // give the worker time to reach the gate
	close(gate.release)
	if err := <-uploadDone; err != nil {
		t.Fatal(err)
	}

	if s := waitTerminal(t, j); s != StateDone {
		t.Fatalf("job finished %s, want done", s)
	}
	if !j.Status().InputLoaded {
		t.Fatal("InputLoaded not set after upload")
	}
	var out bytes.Buffer
	if err := j.Download(context.Background(), &out); err != nil {
		t.Fatal(err)
	}
	data := out.Bytes()
	for x := range recs {
		got := bmmc.DecodeRecord(data[p.Apply(uint64(x))*bmmc.RecordBytes:])
		if got != recs[x] {
			t.Fatalf("record %d: got %+v, want %+v", x, got, recs[x])
		}
	}
}

// TestQueueOverflowAndCancelWhileQueued drives the admission-control
// satellite: with one worker pinned by an in-flight upload, the queue
// fills, the next submit backpressures with ErrQueueFull (HTTP 429), a
// queued job cancels without ever being planned, and the survivors
// complete once the worker unblocks.
func TestQueueOverflowAndCancelWhileQueued(t *testing.T) {
	cfg, release := blockerConfig(t, 2)
	m := newTestManager(t, cfg)
	p := bmmc.BitReversal(testConfig.LgN())

	// The blocker claims the only worker and parks in its first progress
	// callback, so everything submitted next stays queued.
	blocker, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for blocker.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the queue, then overflow it.
	b, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(submitReq(t, testConfig, p)); err != nil {
		t.Fatal(err)
	}
	_, err = m.Submit(submitReq(t, testConfig, p))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit returned %v, want ErrQueueFull", err)
	}
	var he *httpError
	if !errors.As(err, &he) || he.Status() != 429 {
		t.Fatalf("ErrQueueFull must map to HTTP 429, got %v", err)
	}

	// Cancel B while queued: immediately terminal, never planned.
	if _, err := m.Cancel(b.ID()); err != nil {
		t.Fatal(err)
	}
	if s := b.State(); s != StateCanceled {
		t.Fatalf("canceled queued job is %s, want canceled", s)
	}
	b.mu.Lock()
	claimed := b.claimed
	b.mu.Unlock()
	if claimed {
		t.Fatal("canceled-while-queued job was claimed by a worker")
	}

	// Unpin the worker: the blocker and the surviving queued job complete;
	// B stays canceled and is never claimed.
	close(release)
	if s := waitTerminal(t, blocker); s != StateDone {
		t.Fatalf("blocker finished %s, want done", s)
	}
	deadline = time.Now().Add(10 * time.Second)
	for m.Metrics().JobsDone != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	mt := m.Metrics()
	if mt.JobsDone != 2 || mt.JobsCanceled != 1 {
		t.Fatalf("metrics after drain: %+v, want 2 done / 1 canceled", mt)
	}
	b.mu.Lock()
	claimed = b.claimed
	b.mu.Unlock()
	if claimed {
		t.Fatal("canceled job was planned after the queue drained")
	}
}

// TestAwaitInputLifecycle covers the await-input admission path: the job
// holds its slot without running, becomes runnable when the upload lands,
// and — when canceled before any upload — frees its slot without ever
// being claimed.
func TestAwaitInputLifecycle(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Workers: 1, QueueDepth: 1})
	p := bmmc.GrayCode(testConfig.LgN())
	req := submitReq(t, testConfig, p)
	req.AwaitInput = true

	// Job holds the only admission slot while awaiting input.
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(submitReq(t, testConfig, p)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit returned %v, want ErrQueueFull while a pending job holds the slot", err)
	}
	time.Sleep(20 * time.Millisecond)
	if s := j.State(); s != StateQueued {
		t.Fatalf("await-input job advanced to %s without input", s)
	}

	// Cancel before any upload: terminal, never claimed, slot freed.
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	if s := j.State(); s != StateCanceled {
		t.Fatalf("canceled pending job is %s", s)
	}
	j.mu.Lock()
	claimed, released := j.claimed, j.released
	j.mu.Unlock()
	if claimed || !released {
		t.Fatalf("canceled pending job: claimed=%v released=%v, want false/true", claimed, released)
	}

	// The slot is free again; an uploaded await-input job runs to done.
	j2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]bmmc.Record, testConfig.N)
	for i := range recs {
		recs[i] = bmmc.MakeRecord(uint64(i))
	}
	if err := j2.Upload(context.Background(), bytes.NewReader(encodeRecords(recs))); err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j2); s != StateDone {
		t.Fatalf("uploaded await-input job finished %s, want done", s)
	}
}

// TestAwaitInputExpiry pins the admission-slot deadline: an await-input
// job whose upload never arrives is canceled when InputWait elapses, and
// its slot frees up for other tenants.
func TestAwaitInputExpiry(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Workers: 1, QueueDepth: 1, InputWait: 50 * time.Millisecond})
	req := submitReq(t, testConfig, bmmc.GrayCode(testConfig.LgN()))
	req.AwaitInput = true
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StateCanceled {
		t.Fatalf("expired await-input job finished %s, want canceled", s)
	}
	if msg := j.Status().Error; !strings.Contains(msg, "no input received") {
		t.Fatalf("expiry error %q does not name the cause", msg)
	}
	// The slot is free: a normal job is admitted and completes.
	j2, err := m.Submit(submitReq(t, testConfig, bmmc.GrayCode(testConfig.LgN())))
	if err != nil {
		t.Fatalf("slot not freed after expiry: %v", err)
	}
	if s := waitTerminal(t, j2); s != StateDone {
		t.Fatalf("post-expiry job finished %s, want done", s)
	}
}

// TestCancelWhileRunning aborts a job between memoryloads via the progress
// hook (deterministic: the hook runs on the executing goroutine) and
// checks the daemon stays healthy — the worker survives, new jobs
// complete, and no goroutines leak.
func TestCancelWhileRunning(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		var m *Manager
		var once sync.Once
		cfg := ManagerConfig{Workers: 1, QueueDepth: 4, Dir: t.TempDir()}
		cfg.hook = func(j *Job, ev bmmc.PassEvent) {
			if ev.Pass == 1 && ev.Load == 1 {
				once.Do(func() {
					if _, err := m.Cancel(j.ID()); err != nil {
						t.Errorf("cancel from hook: %v", err)
					}
				})
			}
		}
		var err error
		m, err = NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.Shutdown(ctx)
		}()

		j, err := m.Submit(SubmitRequest{
			Config:  testConfig,
			Perm:    string(bmmc.MarshalPermutation(bmmc.BitReversal(testConfig.LgN()))),
			Backend: BackendFile,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s := waitTerminal(t, j); s != StateCanceled {
			t.Fatalf("hook-canceled job finished %s, want canceled", s)
		}
		if _, err := j.Status(), j.Download(context.Background(), io.Discard); err == nil {
			t.Fatal("canceled job served output")
		}

		// The daemon remains healthy: the same worker completes new work
		// (the hook's sync.Once has fired, so nothing cancels this job).
		j2, err := m.Submit(submitReq(t, testConfig, bmmc.GrayCode(testConfig.LgN())))
		if err != nil {
			t.Fatal(err)
		}
		if s := waitTerminal(t, j2); s != StateDone {
			t.Fatalf("post-cancel job finished %s, want done", s)
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > base {
		t.Errorf("goroutine leak: %d before, %d after manager shutdown", base, now)
	}
}

// TestSharedPlanCache pins the daemon-wide plan sharing: the second submit
// of an identical (geometry, permutation, fusion) triple is served from
// the shared cache and both jobs still verify.
func TestSharedPlanCache(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Workers: 2, QueueDepth: 8})
	p := bmmc.BitReversal(testConfig.LgN())
	j1, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}
	if waitTerminal(t, j1) != StateDone || waitTerminal(t, j2) != StateDone {
		t.Fatalf("jobs finished %s/%s, want done/done", j1.State(), j2.State())
	}
	mt := m.Metrics()
	if mt.PlanCacheHits != 1 || mt.PlanCacheMisses != 1 {
		t.Fatalf("plan cache hits/misses = %d/%d, want 1/1", mt.PlanCacheHits, mt.PlanCacheMisses)
	}
	if mt.PlanCacheRate != 0.5 {
		t.Fatalf("plan cache hit rate = %v, want 0.5", mt.PlanCacheRate)
	}
	if !j2.Status().Report.PlanShared || j1.Status().Report.PlanShared {
		t.Fatalf("plan sharing misreported: first %v, second %v",
			j1.Status().Report.PlanShared, j2.Status().Report.PlanShared)
	}
}

// TestShutdownDrains checks the graceful drain: running jobs finish,
// queued jobs cancel, storage is gone, and new submissions are refused.
func TestShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := bmmc.BitReversal(testConfig.LgN())
	j1, err := m.Submit(SubmitRequest{Config: testConfig, Perm: string(bmmc.MarshalPermutation(p)), Backend: BackendSharded})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(submitReq(t, testConfig, p))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Shutdown(ctx)

	if s := j1.State(); !s.Terminal() {
		t.Fatalf("job 1 not terminal after shutdown: %s", s)
	}
	// j2 either completed before the drain observed it queued, or was
	// canceled; it must be terminal and released either way.
	if s := j2.State(); !s.Terminal() {
		t.Fatalf("job 2 not terminal after shutdown: %s", s)
	}
	for _, j := range []*Job{j1, j2} {
		j.mu.Lock()
		released := j.released
		j.mu.Unlock()
		if !released {
			t.Errorf("job %s storage not released by shutdown", j.ID())
		}
	}
	if _, err := m.Submit(submitReq(t, testConfig, p)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit returned %v, want ErrShuttingDown", err)
	}
}

// TestEventStream checks subscribers observe the lifecycle in order and
// the stream closes after the terminal event.
func TestEventStream(t *testing.T) {
	cfg, release := blockerConfig(t, 2)
	m := newTestManager(t, cfg)
	p := bmmc.BitReversal(testConfig.LgN())

	// Pin the worker so the subscription attaches while the job is still
	// queued and sees every transition.
	if _, err := m.Submit(submitReq(t, testConfig, p)); err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(submitReq(t, testConfig, bmmc.GrayCode(testConfig.LgN())))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelSub := j.Subscribe()
	defer cancelSub()

	// A failed upload (no data) leaves the job queued on canonical records.
	if err := j.Upload(context.Background(), bytes.NewReader(nil)); err == nil {
		t.Fatal("empty upload unexpectedly succeeded")
	}
	close(release)

	var states []State
	progress := 0
	for ev := range ch {
		switch ev.Type {
		case EventState:
			states = append(states, ev.State)
		case EventProgress:
			progress++
			if ev.Progress == nil {
				t.Fatal("progress event without payload")
			}
		}
	}
	want := []State{StatePlanning, StateRunning, StateDone}
	if len(states) != len(want) {
		t.Fatalf("state sequence %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state sequence %v, want %v", states, want)
		}
	}
	if progress == 0 {
		t.Fatal("no progress events observed")
	}
}
