package service

import (
	"log/slog"
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pdm"
)

// managerObs owns the daemon's Prometheus registry and the metric handles
// the manager's hot paths touch. Everything else — queue depth, per-state
// job gauges, plan-cache stats, runtime stats — is refreshed lazily on
// scrape, so steady-state job execution pays only for counters it
// actually increments.
type managerObs struct {
	reg *obs.Registry
	log *slog.Logger

	opLatency   *obs.HistogramVec // bmmc_backend_op_seconds{op,disk}
	transitions *obs.CounterVec   // bmmc_job_transitions_total{state}
	queueWait   *obs.Histogram    // bmmc_queue_wait_seconds
	dataBytes   *obs.CounterVec   // bmmc_data_plane_bytes_total{direction}
	passIOs     *obs.CounterVec   // bmmc_pass_ios{class,kernel}
	bounds      *obs.GaugeVec     // bmmc_pass_io_bound{bound}
}

func newManagerObs(m *Manager) *managerObs {
	r := obs.NewRegistry()
	o := &managerObs{
		reg: r,
		log: m.log,
		opLatency: r.HistogramVec("bmmc_backend_op_seconds",
			"Latency of one backend batch call, observed once per disk the batch touched.",
			obs.DefLatencyBuckets, "op", "disk"),
		transitions: r.CounterVec("bmmc_job_transitions_total",
			"Job state transitions, including the initial queued admission.", "state"),
		queueWait: r.Histogram("bmmc_queue_wait_seconds",
			"Time from job admission to a worker claiming it.", obs.DefWaitBuckets),
		dataBytes: r.CounterVec("bmmc_data_plane_bytes_total",
			"Record bytes moved over the HTTP data plane (uploads in, downloads out).", "direction"),
		passIOs: r.CounterVec("bmmc_pass_ios",
			"Measured parallel I/Os attributed to completed engine passes, by plan class and scatter kernel. "+
				"For one job this sums to exactly the job's reported parallel I/O count.",
			"class", "kernel"),
		bounds: r.GaugeVec("bmmc_pass_io_bound",
			"Cumulative theoretical parallel-I/O bounds over jobs that finished done: "+
				"Theorem 3 lower and Theorem 21 upper. bmmc_pass_ios / this ratio is measured-vs-theory.",
			"bound"),
	}
	// Touch the bound series so a scrape before the first completed job
	// still exports both brackets.
	o.bounds.With("lower").Add(0)
	o.bounds.With("upper").Add(0)

	obs.RegisterRuntime(r, "bmmc")

	queueDepth := r.Gauge("bmmc_queue_depth", "Jobs holding admission-queue slots.")
	queueCap := r.Gauge("bmmc_queue_capacity", "Admission queue bound.")
	workerPool := r.Gauge("bmmc_worker_pool", "Execution worker pool size.")
	jobsByState := r.GaugeVec("bmmc_jobs", "Jobs currently in each lifecycle state.", "state")
	dsActive := r.Gauge("bmmc_datasets_active", "Datasets not yet deleted.")
	cacheHits := r.Gauge("bmmc_plan_cache_hits", "Shared plan cache hits since start.")
	cacheMisses := r.Gauge("bmmc_plan_cache_misses", "Shared plan cache misses since start.")
	cacheSize := r.Gauge("bmmc_plan_cache_size", "Plans resident in the shared cache.")
	cacheRatio := r.Gauge("bmmc_plan_cache_hit_ratio", "Plan cache hits / lookups, 0 when unused.")
	r.OnScrape(func() {
		mt := m.Metrics()
		queueDepth.Set(float64(mt.QueueDepth))
		queueCap.Set(float64(mt.QueueCapacity))
		workerPool.Set(float64(mt.Workers))
		jobsByState.With(string(StateQueued)).Set(float64(mt.JobsQueued))
		jobsByState.With(string(StatePlanning)).Set(float64(mt.JobsPlanning))
		jobsByState.With(string(StateRunning)).Set(float64(mt.JobsRunning))
		jobsByState.With(string(StateDone)).Set(float64(mt.JobsDone))
		jobsByState.With(string(StateFailed)).Set(float64(mt.JobsFailed))
		jobsByState.With(string(StateCanceled)).Set(float64(mt.JobsCanceled))
		dsActive.Set(float64(mt.DatasetsActive))
		cacheHits.Set(float64(mt.PlanCacheHits))
		cacheMisses.Set(float64(mt.PlanCacheMisses))
		cacheSize.Set(float64(mt.PlanCacheSize))
		cacheRatio.Set(mt.PlanCacheRate)
	})
	return o
}

// jobTransition is the audit hook: every state transition increments the
// counter and emits one structured audit line with job/dataset/tenant
// fields. It runs with j.mu held (from setStateLocked) or at admission,
// so it touches only immutable job fields and lock-free metric handles.
func (o *managerObs) jobTransition(j *Job, to State, errMsg string) {
	o.transitions.With(string(to)).Inc()
	dataset := ""
	if j.dsEntry != nil {
		dataset = j.dsEntry.id
	}
	o.log.Info("audit: job transition",
		"job", j.id, "dataset", dataset, "tenant", "default",
		"state", string(to), "class", j.summary.Class, "error", errMsg)
}

// ioSink routes instrumented-backend samples to whichever job currently
// runs on the backend. The manager points it at the running job's trace
// buffer for the duration of Execute; dataset jobs are turnstile-
// serialized, so at most one job owns the sink at a time.
type ioSink struct {
	buf atomic.Pointer[obs.TraceBuffer]
}

// opObserver adapts backend OpSamples into latency-histogram observations
// and io spans. It runs on the engine's reader/writer goroutines, so it
// only touches atomic metric handles and the mutex-guarded trace ring.
func (o *managerObs) opObserver(sink *ioSink) pdm.OpObserver {
	return func(s pdm.OpSample) {
		sec := s.Dur.Seconds()
		for disk := range s.PerDisk {
			o.opLatency.With(s.Op, strconv.Itoa(disk)).Observe(sec)
		}
		if tb := sink.buf.Load(); tb != nil {
			tb.Add(obs.Span{
				Name: obs.SpanIO, Op: s.Op,
				Disks: len(s.PerDisk), Blocks: s.Blocks, Runs: s.Runs,
				Start: s.Start, End: s.End(),
			})
		}
	}
}
