package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	bmmc "repro"
	"repro/internal/gf2"
	"repro/internal/obs"
	"repro/internal/obs/obstest"
)

// TestObservabilityMLDJob is the observability acceptance run: a
// file-backed MLD job's /metrics exposition must report bmmc_pass_ios
// exactly equal to the job's measured parallel-I/O count, bracketed by
// the exported Theorem 3 / Theorem 21 bound gauges, and the job trace
// must carry one span per pass and one per memoryload wave — all through
// the HTTP surface, with no goroutine left behind.
func TestObservabilityMLDJob(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		m, err := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewHandler(m, nil))
		defer srv.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.Shutdown(ctx)
		}()

		n, b, lgm := testConfig.LgN(), testConfig.LgB(), testConfig.LgM()
		rng := bmmc.NewRand(7)
		p, err := bmmc.New(gf2.RandomMLD(rng, n, b, lgm), gf2.RandomVec(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		req := submitReq(t, testConfig, p)
		req.Backend = BackendFile
		j, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if s := waitTerminal(t, j); s != StateDone {
			t.Fatalf("job finished %s: %s", s, j.Status().Error)
		}
		st := j.Status()
		if st.Plan.Class != "MLD" {
			t.Fatalf("plan class = %s, want MLD", st.Plan.Class)
		}
		rep := st.Report

		// Scrape /metrics and hold it to the strict exposition grammar.
		fams := scrapeMetrics(t, srv.URL+"/metrics")

		// Measured pass I/Os must equal the job report exactly and sit
		// inside the exported Thm 3 / Thm 21 bracket.
		measured := obstest.Sum(fams, "bmmc_pass_ios", nil)
		if int(measured) != rep.ParallelIOs {
			t.Errorf("bmmc_pass_ios = %v, want report's %d", measured, rep.ParallelIOs)
		}
		if got := obstest.Sum(fams, "bmmc_pass_ios", map[string]string{"class": "MLD"}); got != measured {
			t.Errorf("bmmc_pass_ios{class=MLD} = %v, want all %v attributed to MLD", got, measured)
		}
		lower, err := obstest.Value(fams, "bmmc_pass_io_bound", map[string]string{"bound": "lower"})
		if err != nil {
			t.Fatal(err)
		}
		upper, err := obstest.Value(fams, "bmmc_pass_io_bound", map[string]string{"bound": "upper"})
		if err != nil {
			t.Fatal(err)
		}
		if lower != st.Plan.LowerBoundIOs || upper != float64(st.Plan.UpperBoundIOs) {
			t.Errorf("bound gauges (%v, %v) != plan bounds (%v, %d)",
				lower, upper, st.Plan.LowerBoundIOs, st.Plan.UpperBoundIOs)
		}
		if measured < lower || measured > upper {
			t.Errorf("measured %v outside bound bracket [%v, %v]", measured, lower, upper)
		}

		// The instrumented backend fed the op-latency histogram: every
		// parallel read and write shows up, per disk.
		if got := obstest.Sum(fams, "bmmc_backend_op_seconds_count", nil); got == 0 {
			t.Error("bmmc_backend_op_seconds histogram recorded no backend ops")
		}
		if got := obstest.Sum(fams, "bmmc_job_transitions_total", nil); got < 3 {
			t.Errorf("bmmc_job_transitions_total = %v, want >= 3 (queued/running/done)", got)
		}

		// The trace has one pass span per executed pass and one load span
		// per memoryload wave, plus io spans from the file backend.
		tr := fetchTrace(t, srv.URL+"/v1/jobs/"+j.ID()+"/trace")
		if tr.TraceID != j.ID() {
			t.Errorf("trace id = %s, want %s", tr.TraceID, j.ID())
		}
		passes, loads, ios := 0, 0, 0
		var passIOs int
		for _, s := range tr.Spans {
			switch s.Name {
			case obs.SpanPass:
				passes++
				passIOs += s.IOs
				if s.End.Before(s.Start) {
					t.Errorf("pass span %d ends before it starts", s.Pass)
				}
			case obs.SpanLoad:
				loads++
			case obs.SpanIO:
				ios++
				if s.Op == "" || s.Blocks == 0 {
					t.Errorf("io span missing op/blocks: %+v", s)
				}
			}
		}
		if passes != rep.Passes {
			t.Errorf("trace has %d pass spans, want %d", passes, rep.Passes)
		}
		if want := rep.Passes * (testConfig.N / testConfig.M); loads != want {
			t.Errorf("trace has %d load spans, want %d (one per memoryload wave)", loads, want)
		}
		if passIOs != rep.ParallelIOs {
			t.Errorf("pass spans account %d I/Os, want report's %d", passIOs, rep.ParallelIOs)
		}
		if ios == 0 {
			t.Error("trace has no io spans from the instrumented file backend")
		}
	}()
	waitNoLeak(t, base)
}

// scrapeMetrics fetches a Prometheus exposition and strict-parses it.
func scrapeMetrics(t *testing.T, url string) []obs.Family {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	fams, err := obstest.Parse(string(body))
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v", err)
	}
	return fams
}

// fetchTrace fetches and decodes a job trace.
func fetchTrace(t *testing.T, url string) *JobTrace {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	tr := new(JobTrace)
	if err := json.NewDecoder(resp.Body).Decode(tr); err != nil {
		t.Fatal(err)
	}
	return tr
}
