package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	bmmc "repro"
)

// httpError is an error that knows its HTTP status. The manager and jobs
// return these; anything else renders as 500.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// Status returns the HTTP status the error maps to.
func (e *httpError) Status() int { return e.status }

func errUnknownJob(id string) error {
	return &httpError{http.StatusNotFound, fmt.Sprintf("unknown job %q", id)}
}

func errUnknownDataset(id string) error {
	return &httpError{http.StatusNotFound, fmt.Sprintf("unknown dataset %q", id)}
}

// maxSubmitBody bounds POST /v1/jobs bodies; a marshaled permutation on
// 64-bit addresses is under 5 KB, so 1 MB is generous.
const maxSubmitBody = 1 << 20

// NewHandler wires the manager's HTTP surface:
//
//	POST   /v1/jobs             submit a job (SubmitRequest -> JobStatus, 201)
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events SSE stream of state and progress events
//	DELETE /v1/jobs/{id}        cancel (or release a terminal job)
//	PUT    /v1/jobs/{id}/input  upload N records in the 16-byte wire format
//	GET    /v1/jobs/{id}/output download the permuted records
//	POST   /v1/datasets         create a dataset (CreateDatasetRequest -> DatasetStatus, 201)
//	GET    /v1/datasets         list datasets in creation order
//	GET    /v1/datasets/{id}    dataset status
//	DELETE /v1/datasets/{id}    delete (409 while jobs are bound; waits for streams)
//	PUT    /v1/datasets/{id}/input  upload N records once, for any number of jobs
//	GET    /v1/datasets/{id}/output download the dataset's current records
//	POST   /v1/datasets/{id}/handoff replicate the dataset to another daemon (HandoffRequest)
//	GET    /v1/metrics          daemon-wide gauges (JSON)
//	GET    /v1/jobs/{id}/trace  the job's span trace (JobTrace JSON)
//	GET    /metrics             Prometheus text exposition of the daemon registry
//
// Errors are JSON objects {"error": "..."} with the appropriate status:
// 400 for invalid requests, 404 for unknown jobs or datasets, 409 for
// wrong-state data plane calls (including dataset deletes while jobs are
// bound), 410 for deleted datasets, 429 when the admission queue is full.
func NewHandler(m *Manager, logger *slog.Logger) http.Handler {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &server{m: m, log: logger}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("PUT /v1/jobs/{id}/input", s.input)
	mux.HandleFunc("GET /v1/jobs/{id}/output", s.output)
	mux.HandleFunc("POST /v1/datasets", s.createDataset)
	mux.HandleFunc("GET /v1/datasets", s.listDatasets)
	mux.HandleFunc("GET /v1/datasets/{id}", s.datasetStatus)
	mux.HandleFunc("DELETE /v1/datasets/{id}", s.deleteDataset)
	mux.HandleFunc("PUT /v1/datasets/{id}/input", s.datasetInput)
	mux.HandleFunc("GET /v1/datasets/{id}/output", s.datasetOutput)
	mux.HandleFunc("POST /v1/datasets/{id}/handoff", s.datasetHandoff)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.Handle("GET /metrics", m.Registry())
	return mux
}

// countReader counts bytes streamed in through the data plane.
type countReader struct {
	r io.Reader
	c interface{ Add(float64) }
}

func (cr countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(float64(n))
	return n, err
}

// countWriter counts bytes streamed out through the data plane.
type countWriter struct {
	w io.Writer
	c interface{ Add(float64) }
}

func (cw countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(float64(n))
	return n, err
}

func (s *server) inBytes(r io.Reader) io.Reader {
	return countReader{r, s.m.obs.dataBytes.With("in")}
}

func (s *server) outBytes(w io.Writer) io.Writer {
	return countWriter{w, s.m.obs.dataBytes.With("out")}
}

type server struct {
	m   *Manager
	log *slog.Logger
}

func (s *server) writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		s.writeErr(w, errUnknownJob(r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, &httpError{http.StatusBadRequest, "decoding request: " + err.Error()})
		return
	}
	j, err := s.m.Submit(req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, j.Status())
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.Jobs()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		s.writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, j.Status())
}

func (s *server) input(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if want := int64(j.cfg.N) * bmmc.RecordBytes; r.ContentLength >= 0 && r.ContentLength != want {
		s.writeErr(w, &httpError{http.StatusBadRequest,
			fmt.Sprintf("input must be exactly N*%d = %d bytes, got Content-Length %d", bmmc.RecordBytes, want, r.ContentLength)})
		return
	}
	if err := j.Upload(r.Context(), s.inBytes(r.Body)); err != nil {
		s.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) output(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	// Probe readiness before committing headers so wrong-state requests
	// get a clean JSON error instead of a broken byte stream.
	if err := j.outputReady(); err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(int64(j.cfg.N)*bmmc.RecordBytes))
	if err := j.Download(r.Context(), s.outBytes(w)); err != nil {
		// Headers are committed; log and cut the stream short.
		s.log.Warn("output stream aborted", "job", j.ID(), "err", err)
	}
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.m.Metrics())
}

// trace serves a job's span ring as JSON: GET /v1/jobs/{id}/trace.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		s.writeJSON(w, http.StatusOK, j.Trace())
	}
}

func (s *server) dataset(w http.ResponseWriter, r *http.Request) (*dsEntry, bool) {
	d, ok := s.m.Dataset(r.PathValue("id"))
	if !ok {
		s.writeErr(w, errUnknownDataset(r.PathValue("id")))
		return nil, false
	}
	return d, true
}

func (s *server) createDataset(w http.ResponseWriter, r *http.Request) {
	var req CreateDatasetRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, &httpError{http.StatusBadRequest, "decoding request: " + err.Error()})
		return
	}
	d, err := s.m.CreateDataset(req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, d.Status())
}

func (s *server) listDatasets(w http.ResponseWriter, r *http.Request) {
	datasets := s.m.Datasets()
	out := make([]*DatasetStatus, len(datasets))
	for i, d := range datasets {
		out[i] = d.Status()
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) datasetStatus(w http.ResponseWriter, r *http.Request) {
	if d, ok := s.dataset(w, r); ok {
		s.writeJSON(w, http.StatusOK, d.Status())
	}
}

func (s *server) deleteDataset(w http.ResponseWriter, r *http.Request) {
	d, err := s.m.DeleteDataset(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, d.Status())
}

func (s *server) datasetInput(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(w, r)
	if !ok {
		return
	}
	if want := int64(d.cfg.N) * bmmc.RecordBytes; r.ContentLength >= 0 && r.ContentLength != want {
		s.writeErr(w, &httpError{http.StatusBadRequest,
			fmt.Sprintf("input must be exactly N*%d = %d bytes, got Content-Length %d", bmmc.RecordBytes, want, r.ContentLength)})
		return
	}
	if err := d.Upload(r.Context(), s.inBytes(r.Body)); err != nil {
		s.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) datasetHandoff(w http.ResponseWriter, r *http.Request) {
	var req HandoffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, &httpError{http.StatusBadRequest, "decoding request: " + err.Error()})
		return
	}
	d, err := s.m.HandoffDataset(r.Context(), r.PathValue("id"), req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, d.Status())
}

func (s *server) datasetOutput(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(w, r)
	if !ok {
		return
	}
	// Admit the stream before committing headers: once startStream
	// succeeds the dataset cannot gain a job or be deleted under us, so
	// wrong-state requests get a clean JSON error and admitted requests
	// get the full byte stream — never a 200 with a truncated body.
	if err := d.startStream(); err != nil {
		s.writeErr(w, err)
		return
	}
	defer d.endStream(false)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(int64(d.cfg.N)*bmmc.RecordBytes))
	if err := d.ds.Dump(r.Context(), s.outBytes(w)); err != nil {
		// Headers are committed; log and cut the stream short.
		s.log.Warn("dataset output stream aborted", "dataset", d.id, "err", err)
	}
}

// events streams a job's lifecycle as server-sent events: one "data:" line
// per Event, starting with a snapshot of the current state, ending after
// the terminal state event. Slow consumers may miss progress events but
// never state transitions.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	ch, cancelSub := j.Subscribe()
	defer cancelSub()

	// Snapshot first: a subscriber always learns the current state even if
	// no further transitions happen. The snapshot may duplicate (or, very
	// rarely, run ahead of) a buffered transition; consumers treat events
	// as idempotent status updates.
	st := j.Status()
	if !send(Event{Type: EventState, JobID: j.ID(), State: st.State, Error: st.Error}) {
		return
	}
	if st.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			if !send(ev) {
				return
			}
			if ev.Type == EventState && ev.State.Terminal() {
				return
			}
		}
	}
}
