// Package service turns the library into a long-lived permutation daemon:
// a job manager that admits, queues, and executes BMMC permutation jobs on
// a bounded worker pool, plus an HTTP/JSON control plane and a streaming
// data plane in the library's 16-byte record wire format. cmd/bmmcd wires
// the package to flags and signals; package client wraps the HTTP surface
// for Go callers.
//
// The parallel disk model is naturally multi-tenant — independent jobs
// contend for the same D disks — so the daemon owns what individual
// library consumers cannot: admission control (a FIFO queue with
// backpressure), per-job storage isolation (every job gets its own
// Backend: RAM, a private file directory, or sharded directories), per-job
// I/O accounting, and a shared plan cache so repeated permutations across
// tenants are factorized once.
//
// A job moves through the states queued -> planning -> running ->
// done/failed/canceled. Planning in the paper's sense (classification and
// GF(2) factorization) happens at submit time, through the manager's
// shared plan cache, so the POST response can quote the plan summary; the
// planning state marks the short window where a worker has claimed the job,
// drained any in-flight input upload, and is binding the prepared plan for
// execution. Input may be uploaded only while the job is queued; output may
// be downloaded once it is done.
package service

import (
	"time"

	bmmc "repro"
	"repro/internal/obs"
)

// State is a job's position in its lifecycle.
type State string

// The job states, in order. Queued jobs wait in the FIFO admission queue
// and may receive input uploads; planning and running jobs are owned by a
// worker; done, failed, and canceled are terminal.
const (
	StateQueued   State = "queued"
	StatePlanning State = "planning"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final: no further transitions and
// no further events.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Backend kinds a job may request. The daemon provisions the storage
// per job and destroys it when the job is released.
const (
	BackendMem     = "mem"     // RAM-backed disks (the default)
	BackendFile    = "file"    // one file per disk in a job-private directory
	BackendSharded = "sharded" // disk files spread round-robin over shard directories
)

// SubmitRequest is the body of POST /v1/jobs: the machine geometry, the
// permutation in the MarshalPermutation text format, and the storage the
// job runs on — either a per-job backend kind provisioned for this job
// alone, or (via Dataset) a handle on a shared daemon dataset so chained
// permutations run back-to-back on the same storage with zero re-upload.
type SubmitRequest struct {
	Config  bmmc.Config `json:"config,omitempty"`
	Perm    string      `json:"perm"`
	Backend string      `json:"backend,omitempty"` // "mem" (default), "file", "sharded"
	Fuse    *bool       `json:"fuse,omitempty"`    // pass fusion; nil means on
	// Dataset names a dataset created via POST /v1/datasets. The job then
	// executes on that dataset's storage — input is whatever the dataset
	// currently holds, output stays on the dataset for the next job or a
	// final download — and jobs referencing one dataset run in submission
	// order. Config may be omitted (the dataset's geometry is inherited)
	// and Backend/AwaitInput must be: the dataset owns storage and data.
	Dataset string `json:"dataset,omitempty"`
	// AwaitInput holds the job out of the execution queue — while still
	// occupying an admission slot — until a PUT /input upload completes, so
	// workers never race ahead of the data plane. The daemon cancels the
	// job if no upload lands within its input-wait deadline, so idle
	// submitters cannot hold admission slots forever. Without AwaitInput
	// the job is runnable immediately and permutes the canonical records
	// (or whatever an upload managed to land while it sat queued).
	AwaitInput bool `json:"await_input,omitempty"`
}

// CreateDatasetRequest is the body of POST /v1/datasets: the machine
// geometry and the storage kind the dataset's simulated disks live on.
// The dataset is created holding the canonical records MakeRecord(0..N-1);
// replace them with PUT /v1/datasets/{id}/input.
type CreateDatasetRequest struct {
	Config  bmmc.Config `json:"config"`
	Backend string      `json:"backend,omitempty"` // "mem" (default), "file", "sharded"
	// ID, when set, names the dataset instead of letting the daemon
	// generate an id — the cluster coordinator uses this so a dataset
	// keeps one stable name no matter which worker currently holds it.
	// Creating over a live id is refused (409); re-creating a deleted id
	// is allowed, since a rebalance legitimately moves a dataset away and
	// later back.
	ID string `json:"id,omitempty"`
	// Stripes, when > 1 on a request to the cluster coordinator, spreads
	// the dataset over that many workers as contiguous record ranges. A
	// single daemon refuses it: one node holds whole datasets only.
	Stripes int `json:"stripes,omitempty"`
}

// HandoffRequest is the body of POST /v1/datasets/{id}/handoff: replicate
// the dataset to the daemon at Target (base URL) by replaying the 16-byte
// record wire format, optionally under a different id there, and
// optionally delete the local copy once the replica is durable — the
// cluster rebalance primitive.
type HandoffRequest struct {
	Target string `json:"target"`           // receiving daemon's base URL
	ID     string `json:"id,omitempty"`     // id at the target (default: same id)
	Delete bool   `json:"delete,omitempty"` // drop the local copy after success
}

// DatasetStatus is the wire rendering of one dataset: GET
// /v1/datasets/{id}. ActiveJobs counts jobs bound to the dataset that have
// not reached a terminal state; while it is nonzero the data plane is
// closed (409) and DELETE is refused (409).
type DatasetStatus struct {
	ID          string      `json:"id"`
	Config      bmmc.Config `json:"config"`
	Backend     string      `json:"backend"`
	InputLoaded bool        `json:"input_loaded"`       // user records uploaded (else canonical)
	ActiveJobs  int         `json:"active_jobs"`        // bound jobs not yet terminal
	JobsRun     int         `json:"jobs_run"`           // jobs that executed on this dataset
	Released    bool        `json:"released,omitempty"` // deleted; storage reclaimed
	Created     time.Time   `json:"created"`
}

// PassSummary is one one-pass permutation within a PlanSummary.
type PassSummary struct {
	Kind string `json:"kind"` // MRC, MLD, or inverse-MLD
}

// PlanSummary is the machine-readable rendering of a bmmc.Plan: the class
// dispatch, the (possibly fused) pass structure, and the exact cost next
// to the paper's bounds. It is the summary POST /v1/jobs returns and the
// struct bmmcplan -json emits, so service consumers and offline tooling
// read the same schema.
type PlanSummary struct {
	Class                string        `json:"class"`
	Bits                 int           `json:"bits"`
	RankGamma            int           `json:"rank_gamma"`
	PassCount            int           `json:"pass_count"`
	Passes               []PassSummary `json:"passes,omitempty"`
	FusedFrom            int           `json:"fused_from,omitempty"` // pass count before fusion, 0 if never fused
	CostIOs              int           `json:"cost_ios"`
	LowerBoundIOs        float64       `json:"lower_bound_ios"`         // Theorem 3
	RefinedLowerBoundIOs float64       `json:"refined_lower_bound_ios"` // Section 7
	UpperBoundIOs        int           `json:"upper_bound_ios"`         // Theorem 21
}

// Summarize renders a prepared plan as the wire summary.
func Summarize(pl *bmmc.Plan) *PlanSummary {
	s := &PlanSummary{
		Class:                pl.Class().String(),
		Bits:                 pl.Permutation().Bits(),
		RankGamma:            pl.RankGamma(),
		PassCount:            pl.PassCount(),
		FusedFrom:            pl.FusedFrom(),
		CostIOs:              pl.CostIOs(),
		LowerBoundIOs:        pl.LowerBoundIOs(),
		RefinedLowerBoundIOs: bmmc.RefinedLowerBoundIOs(pl.Geometry(), pl.RankGamma()),
		UpperBoundIOs:        pl.UpperBoundIOs(),
	}
	for _, pass := range pl.Passes() {
		s.Passes = append(s.Passes, PassSummary{Kind: pass.Kind.String()})
	}
	return s
}

// Progress is a job's most recent pass-runner position: memoryload Load of
// Loads within pass Pass of Passes, running the Kind algorithm.
type Progress struct {
	Pass   int    `json:"pass"`
	Passes int    `json:"passes"`
	Kind   string `json:"kind"`
	Load   int    `json:"load"`
	Loads  int    `json:"loads"`
}

// RunReport is the measured outcome of a completed job: the executed pass
// count and the parallel-I/O statistics of the job's private disk system,
// exactly what a direct Permuter.Execute of the same plan would measure.
type RunReport struct {
	Passes         int  `json:"passes"`
	ParallelIOs    int  `json:"parallel_ios"`
	ParallelReads  int  `json:"parallel_reads"`
	ParallelWrites int  `json:"parallel_writes"`
	BlocksRead     int  `json:"blocks_read"`
	BlocksWritten  int  `json:"blocks_written"`
	PlanShared     bool `json:"plan_shared"` // plan came from the daemon's shared cache
}

// JobStatus is the wire rendering of one job: GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string       `json:"id"`
	State       State        `json:"state"`
	Error       string       `json:"error,omitempty"`
	Config      bmmc.Config  `json:"config"`
	Backend     string       `json:"backend"`
	Dataset     string       `json:"dataset,omitempty"` // shared dataset the job runs on
	Plan        *PlanSummary `json:"plan"`
	InputLoaded bool         `json:"input_loaded"`       // user records uploaded (else canonical)
	Released    bool         `json:"released,omitempty"` // storage reclaimed; output gone
	Progress    *Progress    `json:"progress,omitempty"` // last reported pass position
	Report      *RunReport   `json:"report,omitempty"`   // set when done
	Submitted   time.Time    `json:"submitted"`
	Started     *time.Time   `json:"started,omitempty"`  // claimed by a worker
	Finished    *time.Time   `json:"finished,omitempty"` // reached a terminal state
}

// Metrics is the daemon-wide gauge set: GET /v1/metrics. Aggregate I/O
// counters sum the per-job disk statistics of every job that reached a
// terminal state, so they equal what the same sequence of direct
// Permuter.Execute calls would have measured.
type Metrics struct {
	JobsSubmitted int `json:"jobs_submitted"`
	JobsQueued    int `json:"jobs_queued"`
	JobsPlanning  int `json:"jobs_planning"`
	JobsRunning   int `json:"jobs_running"`
	JobsDone      int `json:"jobs_done"`
	JobsFailed    int `json:"jobs_failed"`
	JobsCanceled  int `json:"jobs_canceled"`

	QueueDepth    int `json:"queue_depth"`    // jobs waiting in the admission queue
	QueueCapacity int `json:"queue_capacity"` // admission queue bound (backpressure beyond it)
	Workers       int `json:"worker_pool"`    // execution worker pool size (cluster: summed over nodes; "workers" there is the per-node array)

	DatasetsCreated int `json:"datasets_created"` // datasets ever created
	DatasetsActive  int `json:"datasets_active"`  // datasets not yet deleted
	DatasetJobsRun  int `json:"dataset_jobs_run"` // jobs executed via dataset handles

	Passes         int `json:"passes"`          // aggregate executed passes
	ParallelIOs    int `json:"parallel_ios"`    // aggregate parallel I/Os
	ParallelReads  int `json:"parallel_reads"`  // aggregate parallel read operations
	ParallelWrites int `json:"parallel_writes"` // aggregate parallel write operations

	PlanCacheHits   int     `json:"plan_cache_hits"`
	PlanCacheMisses int     `json:"plan_cache_misses"`
	PlanCacheSize   int     `json:"plan_cache_size"`
	PlanCacheRate   float64 `json:"plan_cache_hit_rate"` // hits / (hits + misses), 0 when unused
}

// JobTrace is the wire rendering of a job's span ring: GET
// /v1/jobs/{id}/trace. Spans arrive in completion order; Dropped counts
// spans evicted from the bounded ring. For a striped cluster job the
// coordinator stitches every worker sub-job's spans under the striped
// job's trace id, stamping each span's Worker/JobID.
type JobTrace struct {
	TraceID string     `json:"trace_id"`
	JobID   string     `json:"job_id"`
	Dropped int        `json:"dropped,omitempty"`
	Spans   []obs.Span `json:"spans"`
}

// EventType discriminates the stream events of GET /v1/jobs/{id}/events.
type EventType string

const (
	// EventState announces a state transition (or, as the first event of a
	// subscription, the job's current state).
	EventState EventType = "state"
	// EventProgress reports a completed memoryload.
	EventProgress EventType = "progress"
	// EventSpan summarizes a completed pass as its trace span — the SSE
	// rendering of the per-pass entries in GET /v1/jobs/{id}/trace.
	EventSpan EventType = "span"
)

// Event is one SSE message on a job's event stream. Progress events may be
// dropped for slow consumers; state and span events are always delivered,
// and the stream ends after the terminal state event.
type Event struct {
	Type     EventType `json:"type"`
	JobID    string    `json:"job_id"`
	State    State     `json:"state,omitempty"`
	Error    string    `json:"error,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
	Span     *obs.Span `json:"span,omitempty"`
}
