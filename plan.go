package bmmc

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/factor"
)

// Plan is a first-class execution plan for one permutation on one machine
// geometry: the dispatched class, the (possibly fused) one-pass sequence,
// and the paper's cost bounds, as an inspectable, immutable value.
//
// Plans separate the paper's two phases in the public API: Permuter.Plan
// pays for classification and GF(2) factorization once, Permuter.Execute
// runs the prepared passes as many times as the caller likes — on the
// planning Permuter or any other with the same Config — with records and
// Stats identical to the fused Permute call.
//
//	pl, err := p.Plan(bmmc.BitReversal(cfg.LgN()))
//	fmt.Println(pl)                  // passes, exact cost, Thm 3 / Thm 21 bounds
//	for _, pass := range pl.Passes() // inspect each one-pass permutation
//	    ...
//	rep, err := p.Execute(ctx, pl)   // run it; plan again never
type Plan = core.Plan

// PlanFor classifies and (for full BMMC permutations) factorizes p for an
// arbitrary valid geometry without a Permuter: pure GF(2) planning with no
// disk system and no I/O. The returned Plan is identical to what
// Permuter.Plan would build on that geometry (modulo plan-cache metadata)
// and may be executed on any Permuter with the same Config. Services and
// tools use it to quote a permutation's class, pass structure, and cost
// bounds before any storage exists.
func PlanFor(cfg Config, p Permutation, fuse bool) (*Plan, error) {
	return core.PlanFor(cfg, p, fuse)
}

// PlanCache is a standalone LRU cache of prepared Plans for callers that
// plan outside any Permuter (a service planning for many tenants, a tool
// quoting costs). It reuses the Permuter plan cache's keying and eviction;
// see NewPlanCache.
type PlanCache = core.PlanCache

// NewPlanCache returns a concurrency-safe plan cache holding up to n
// plans; n <= 0 disables caching. PlanCache.PlanFor is the cached
// equivalent of PlanFor, and Stats exposes the CacheStats counters.
func NewPlanCache(n int) *PlanCache { return core.NewPlanCache(n) }

// PlanPass is one one-pass permutation within a Plan: the permutation to
// apply and the class (MRC, MLD, or inverse-MLD) whose executor runs it.
type PlanPass = factor.Pass

// PassEvent is one progress report from a running permutation: memoryload
// Load of Loads within pass Pass of Passes has completed (Load 0 marks a
// pass starting). Kind names the pass algorithm ("MRC", "MLD", "MLD^-1",
// "sort", "naive").
type PassEvent = engine.PassEvent

// WithProgress installs a callback receiving a PassEvent at every pass
// start and after every completed memoryload, for long-run reporting and
// instrumentation. The callback runs on the executing goroutine between
// counted parallel I/Os, so it must be cheap, and it observes execution
// without altering results or I/O counts.
func WithProgress(fn func(PassEvent)) Option { return core.WithProgress(fn) }
