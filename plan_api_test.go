package bmmc_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"

	bmmc "repro"
)

var planConfig = bmmc.Config{N: 1 << 12, D: 4, B: 8, M: 1 << 8}

// TestPlanExecuteMatchesPermute is the v2 acceptance invariant: planning
// once and calling Execute N times yields byte-identical records and Stats
// versus N Permute calls, and the planning work happens exactly once — the
// plan cache sees no further traffic from Execute.
func TestPlanExecuteMatchesPermute(t *testing.T) {
	const reps = 3
	for _, tc := range []struct {
		name string
		perm bmmc.Permutation
	}{
		{"bitrev", bmmc.BitReversal(12)},
		{"gray", bmmc.GrayCode(12)},
		{"random", bmmc.RandomPermutation(bmmc.NewRand(11), 12)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			planned, err := bmmc.NewPermuter(planConfig)
			if err != nil {
				t.Fatal(err)
			}
			defer planned.Close()
			fused, err := bmmc.NewPermuter(planConfig, bmmc.WithPlanCache(0))
			if err != nil {
				t.Fatal(err)
			}
			defer fused.Close()

			plan, err := planned.Plan(tc.perm)
			if err != nil {
				t.Fatal(err)
			}
			statsAfterPlan := planned.CacheStats()

			ctx := context.Background()
			for rep := 0; rep < reps; rep++ {
				repA, err := planned.Execute(ctx, plan)
				if err != nil {
					t.Fatalf("Execute rep %d: %v", rep, err)
				}
				repB, err := fused.Permute(tc.perm)
				if err != nil {
					t.Fatalf("Permute rep %d: %v", rep, err)
				}
				if repA.Passes != repB.Passes || repA.ParallelIOs != repB.ParallelIOs {
					t.Fatalf("rep %d: Execute cost (%d passes, %d IOs) != Permute cost (%d passes, %d IOs)",
						rep, repA.Passes, repA.ParallelIOs, repB.Passes, repB.ParallelIOs)
				}
				recsA, err := planned.Records()
				if err != nil {
					t.Fatal(err)
				}
				recsB, err := fused.Records()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(recsA, recsB) {
					t.Fatalf("rep %d: records diverge between Execute and Permute", rep)
				}
				if a, b := planned.Stats(), fused.Stats(); !reflect.DeepEqual(a, b) {
					t.Fatalf("rep %d: stats diverge: Execute %+v, Permute %+v", rep, a, b)
				}
			}
			// Execute must never re-plan: no cache traffic after Plan.
			if got := planned.CacheStats(); got != statsAfterPlan {
				t.Errorf("Execute touched the plan cache: before %+v, after %+v", statsAfterPlan, got)
			}
		})
	}
}

// TestPlanInspectable pins the plan's introspection surface: class, pass
// list, exact cost, and the Theorem 3 / Theorem 21 sandwich.
func TestPlanInspectable(t *testing.T) {
	p, err := bmmc.NewPermuter(planConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	plan, err := p.Plan(bmmc.BitReversal(12))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Class() != bmmc.ClassBMMC {
		t.Errorf("bit reversal class = %v, want BMMC", plan.Class())
	}
	if plan.Geometry() != planConfig {
		t.Errorf("plan geometry %v, want %v", plan.Geometry(), planConfig)
	}
	passes := plan.Passes()
	if len(passes) != plan.PassCount() || plan.PassCount() == 0 {
		t.Fatalf("PassCount %d inconsistent with Passes() len %d", plan.PassCount(), len(passes))
	}
	if got, want := plan.CostIOs(), plan.PassCount()*planConfig.PassIOs(); got != want {
		t.Errorf("CostIOs = %d, want %d", got, want)
	}
	if float64(plan.CostIOs()) < plan.LowerBoundIOs() || plan.CostIOs() > plan.UpperBoundIOs() {
		t.Errorf("cost %d outside [LB %.0f, UB %d]", plan.CostIOs(), plan.LowerBoundIOs(), plan.UpperBoundIOs())
	}
	// The pass list composes back to the planned permutation.
	composed := bmmc.Identity(12)
	for _, pass := range passes {
		composed = pass.Perm.Compose(composed)
	}
	if !reflect.DeepEqual(composed, plan.Permutation()) {
		t.Error("plan passes do not compose to the planned permutation")
	}

	// An identity plan is free and empty.
	idPlan, err := p.Plan(bmmc.Identity(12))
	if err != nil {
		t.Fatal(err)
	}
	if idPlan.PassCount() != 0 || idPlan.CostIOs() != 0 {
		t.Errorf("identity plan: %d passes, %d IOs, want 0, 0", idPlan.PassCount(), idPlan.CostIOs())
	}
}

// TestPlanPortableAcrossPermuters executes one plan on a second Permuter
// with the same geometry, and rejects executing on a different geometry.
func TestPlanPortableAcrossPermuters(t *testing.T) {
	a, err := bmmc.NewPermuter(planConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := bmmc.NewPermuter(planConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	tr := bmmc.Transpose(6, 6)
	plan, err := a.Plan(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(context.Background(), plan); err != nil {
		t.Fatalf("executing a's plan on b: %v", err)
	}
	if err := b.Verify(tr); err != nil {
		t.Errorf("b's records wrong after executing a's plan: %v", err)
	}

	other, err := bmmc.NewPermuter(bmmc.Config{N: 1 << 13, D: 4, B: 8, M: 1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.Execute(context.Background(), plan); err == nil {
		t.Error("executing a 2^12-record plan on a 2^13-record Permuter unexpectedly succeeded")
	}
	if _, err := a.Execute(context.Background(), nil); err == nil {
		t.Error("executing a nil plan unexpectedly succeeded")
	}
}

// TestExecuteCancellation cancels a multi-pass run mid-pass (from a
// progress callback, so the cancellation lands between memoryloads of a
// specific pass) and checks the contract: ctx's error comes back, no
// goroutine leaks, the stored records are usable, and the same Permuter
// completes the permutation afterwards.
func TestExecuteCancellation(t *testing.T) {
	p, err := bmmc.NewPermuter(planConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bitrev := bmmc.BitReversal(12)
	plan, err := p.Plan(bitrev)
	if err != nil {
		t.Fatal(err)
	}

	before, err := p.Records()
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	// Cancel as soon as the first pass reports its second memoryload.
	for rep := 0; rep < 4; rep++ {
		ctx, cancel := context.WithCancel(context.Background())
		cp, err := bmmc.NewPermuter(planConfig, bmmc.WithProgress(func(ev bmmc.PassEvent) {
			if ev.Pass == 1 && ev.Load >= 2 {
				cancel()
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		_, err = cp.Execute(ctx, plan)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("rep %d: Execute returned %v, want context.Canceled", rep, err)
		}
		// The interrupted pass never swapped portions: the stored records
		// are exactly the pre-Execute state, and the Permuter still works.
		got, err := cp.Records()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, before) {
			t.Fatalf("rep %d: canceled Execute disturbed the stored records", rep)
		}
		if _, err := cp.Execute(context.Background(), plan); err != nil {
			t.Fatalf("rep %d: Execute after cancellation: %v", rep, err)
		}
		if err := cp.Verify(bitrev); err != nil {
			t.Fatalf("rep %d: verification after recovered run: %v", rep, err)
		}
		cp.Close()
	}

	// The prefetch reader of every canceled run must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > base {
		t.Errorf("goroutine leak: %d before, %d after canceled executions", base, now)
	}

	// A pre-canceled context aborts before any I/O.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ios := p.Stats().ParallelIOs()
	if _, err := p.Execute(ctx, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Execute returned %v", err)
	}
	if got := p.Stats().ParallelIOs(); got != ios {
		t.Errorf("pre-canceled Execute performed %d parallel I/Os", got-ios)
	}
}

// TestLoadDumpRoundTrip pushes caller-supplied records through Load ->
// Execute -> inverse Execute -> Dump on the file and sharded backends and
// expects the exact input bytes back.
func TestLoadDumpRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		backend func(t *testing.T) bmmc.Backend
	}{
		{"file", func(t *testing.T) bmmc.Backend { return bmmc.FileBackend(t.TempDir()) }},
		{"sharded", func(t *testing.T) bmmc.Backend {
			return bmmc.ShardedBackend(t.TempDir(), t.TempDir(), t.TempDir())
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := bmmc.NewPermuter(planConfig, bmmc.WithBackend(tc.backend(t)))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			ctx := context.Background()

			// Arbitrary user records: keys out of order, payload tags that
			// MakeRecord would never produce.
			rng := bmmc.NewRand(99)
			input := make([]byte, planConfig.N*bmmc.RecordBytes)
			for i, key := range rng.Perm(planConfig.N) {
				r := bmmc.Record{Key: uint64(key), Tag: rng.Uint64()}
				r.Encode(input[i*bmmc.RecordBytes:])
			}
			if err := p.Load(ctx, bytes.NewReader(input)); err != nil {
				t.Fatal(err)
			}

			// Load replaces records without counting I/O.
			if got := p.Stats().ParallelIOs(); got != 0 {
				t.Errorf("Load counted %d parallel I/Os", got)
			}

			rot := bmmc.RotateBits(12, 5)
			if _, err := p.Permute(rot); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Permute(rot.Inverse()); err != nil {
				t.Fatal(err)
			}
			if err := p.Sync(); err != nil {
				t.Fatal(err)
			}

			var out bytes.Buffer
			if err := p.Dump(ctx, &out); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), input) {
				t.Error("dumped bytes differ from loaded bytes after a permute round trip")
			}

			// Short input is rejected with ErrUnexpectedEOF.
			if err := p.Load(ctx, bytes.NewReader(input[:len(input)-1])); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("short Load returned %v, want ErrUnexpectedEOF", err)
			}
			// A canceled Load leaves the stored records untouched.
			canceled, cancel := context.WithCancel(ctx)
			cancel()
			if err := p.Load(canceled, bytes.NewReader(input)); !errors.Is(err, context.Canceled) {
				t.Errorf("canceled Load returned %v", err)
			}
			var out2 bytes.Buffer
			if err := p.Dump(ctx, &out2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out2.Bytes(), input) {
				t.Error("failed Loads disturbed the stored records")
			}
		})
	}
}

// BenchmarkExecutePrepared measures the steady state the v2 API buys:
// the plan is built once outside the loop, so iterations pay only for
// execution.
func BenchmarkExecutePrepared(b *testing.B) {
	p, err := bmmc.NewPermuter(planConfig)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	plan, err := p.Plan(bmmc.BitReversal(12))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Execute(ctx, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPermuteReplanned is the v1 shape with caching disabled: every
// iteration re-classifies and re-factorizes. The gap to
// BenchmarkExecutePrepared is the planning cost Execute amortizes away.
func BenchmarkPermuteReplanned(b *testing.B) {
	p, err := bmmc.NewPermuter(planConfig, bmmc.WithPlanCache(0))
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	bitrev := bmmc.BitReversal(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Permute(bitrev); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPlanForMatchesPermuterPlan pins the Permuter-free planning entry
// point: PlanFor builds the same plan Permuter.Plan does — identical class,
// pass structure, and cost — and the resulting plan executes on any
// Permuter with the same Config, producing the same records and Stats.
func TestPlanForMatchesPermuterPlan(t *testing.T) {
	for _, tc := range []struct {
		name string
		perm bmmc.Permutation
	}{
		{"bitrev", bmmc.BitReversal(12)},
		{"gray", bmmc.GrayCode(12)},
		{"vecrev", bmmc.VectorReversal(12)},
		{"identity", bmmc.Identity(12)},
		{"random", bmmc.RandomPermutation(bmmc.NewRand(23), 12)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			free, err := bmmc.PlanFor(planConfig, tc.perm, true)
			if err != nil {
				t.Fatal(err)
			}
			p, err := bmmc.NewPermuter(planConfig)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			bound, err := p.Plan(tc.perm)
			if err != nil {
				t.Fatal(err)
			}
			if free.Class() != bound.Class() || free.PassCount() != bound.PassCount() ||
				free.CostIOs() != bound.CostIOs() || free.FusedFrom() != bound.FusedFrom() {
				t.Fatalf("PlanFor %v != Permuter.Plan %v", free, bound)
			}
			rep, err := p.Execute(context.Background(), free)
			if err != nil {
				t.Fatalf("executing a PlanFor plan: %v", err)
			}
			if rep.ParallelIOs != free.CostIOs() {
				t.Fatalf("executed %d parallel I/Os, plan quoted %d", rep.ParallelIOs, free.CostIOs())
			}
			if err := p.Verify(tc.perm); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Geometry validation happens up front.
	if _, err := bmmc.PlanFor(bmmc.Config{N: 100, D: 4, B: 8, M: 256}, bmmc.GrayCode(6), true); err == nil {
		t.Fatal("PlanFor accepted an invalid geometry")
	}
	if _, err := bmmc.PlanFor(planConfig, bmmc.GrayCode(6), true); err == nil {
		t.Fatal("PlanFor accepted a width-mismatched permutation")
	}
}

// TestPlanCacheWidthCheck pins the shared-cache validation: the cache key
// omits lg N (the pass structure depends only on the permutation and
// lg B / lg M), so a cache hit must still reject a permutation whose width
// does not match the requested geometry — otherwise a daemon sharing one
// cache across tenants would execute a wrong-sized plan.
func TestPlanCacheWidthCheck(t *testing.T) {
	pc := bmmc.NewPlanCache(8)
	p12 := bmmc.BitReversal(12)
	cfg12 := bmmc.Config{N: 1 << 12, D: 4, B: 8, M: 1 << 8}
	cfg16 := bmmc.Config{N: 1 << 16, D: 4, B: 8, M: 1 << 8} // same lg B, lg M

	if _, hit, err := pc.PlanFor(cfg12, p12, true); err != nil || hit {
		t.Fatalf("cold PlanFor: hit=%v err=%v", hit, err)
	}
	// Same permutation, wider geometry: identical cache key, but the hit
	// path must still reject the width mismatch.
	if _, _, err := pc.PlanFor(cfg16, p12, true); err == nil {
		t.Fatal("PlanFor accepted a 12-bit permutation on a 16-bit geometry via the cache")
	}
	// The legitimate repeat is a hit with full stats.
	pl, hit, err := pc.PlanFor(cfg12, p12, true)
	if err != nil || !hit {
		t.Fatalf("repeat PlanFor: hit=%v err=%v", hit, err)
	}
	if !pl.Cached() || pl.Geometry() != cfg12 {
		t.Fatalf("cached plan misstamped: cached=%v geometry=%v", pl.Cached(), pl.Geometry())
	}
	if cs := pc.Stats(); cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 miss", cs)
	}
}
