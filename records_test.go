package bmmc_test

import (
	"testing"

	bmmc "repro"
)

// Regression test for the portion-swap contract of Records/LoadRecords:
// the source portion swaps after every pass, so after an odd number of
// passes the current records physically live in the second portion.
// Records and LoadRecords must keep tracking the swap so callers always
// see the output of the most recent permutation, however many passes a
// chain of permutations consumed.
func TestRecordsTrackPortionAcrossChainedPasses(t *testing.T) {
	cfg := bmmc.Config{N: 1 << 12, D: 4, B: 8, M: 1 << 8}
	p, err := bmmc.NewPermuter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	n := cfg.LgN()

	checkImage := func(stage string, cumulative bmmc.Permutation) {
		t.Helper()
		recs, err := p.Records()
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		for y, r := range recs {
			if got := cumulative.Apply(r.Key); got != uint64(y) {
				t.Fatalf("%s: address %d holds record %d, which belongs at %d", stage, y, r.Key, got)
			}
		}
	}

	// One pass (odd): Gray code is MRC.
	gray := bmmc.GrayCode(n)
	rep, err := p.Permute(gray)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passes != 1 {
		t.Fatalf("Gray code took %d passes, want 1", rep.Passes)
	}
	checkImage("after 1 pass", gray)

	// A multi-pass permutation on top; cumulative = bitrev ∘ gray. The
	// total pass count over the chain is odd or even depending on the
	// factoring — Records must not care.
	bitrev := bmmc.BitReversal(n)
	if _, err := p.Permute(bitrev); err != nil {
		t.Fatal(err)
	}
	cumulative := bitrev.Compose(gray)
	checkImage("after chain", cumulative)

	// LoadRecords must target the same portion Records reads: a write
	// followed by a fresh permutation must start from the loaded state.
	recs, err := p.Records()
	if err != nil {
		t.Fatal(err)
	}
	// Re-load the records shifted by one address so the state is custom.
	rot := append(recs[1:len(recs):len(recs)], recs[0])
	if err := p.LoadRecords(rot); err != nil {
		t.Fatal(err)
	}
	got, err := p.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rot {
		if got[i] != rot[i] {
			t.Fatalf("LoadRecords/Records round-trip diverged at %d", i)
		}
	}

	// And one more permutation still runs correctly from the loaded state.
	rev := bmmc.VectorReversal(n)
	if _, err := p.Permute(rev); err != nil {
		t.Fatal(err)
	}
	final, err := p.Records()
	if err != nil {
		t.Fatal(err)
	}
	inv := rev.Inverse()
	for y, r := range final {
		// final[y] must be rot[x] where rev maps x to y.
		if want := rot[inv.Apply(uint64(y))]; r != want {
			t.Fatalf("after reload+reverse: address %d holds key %d, want key %d", y, r.Key, want.Key)
		}
	}
}
