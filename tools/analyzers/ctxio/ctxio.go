// Package ctxio pins the "no uncancelable public path" rule from the v2
// API work: every storage or network operation the library performs must
// be abortable by the caller, which means exported functions thread a
// context.Context down to the I/O and never mint their own root.
//
// Two checks:
//
//  1. context.Background() / context.TODO() in non-main packages. A
//     library function that conjures its own root context detaches the
//     operation from the caller's cancellation; daemons own exactly the
//     few legitimate roots (process lifetime, detached best-effort
//     cleanup), and those sites carry a //lint:allow ctxio annotation
//     saying so.
//  2. Dropped contexts: an exported function that accepts a
//     context.Context and then never uses it. The signature promises
//     cancelability the body doesn't deliver — either thread the ctx or
//     drop the parameter.
//
// Commands (package main) are exempt from check 1: main is the root of
// the context tree and Background() is exactly right there.
package ctxio

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/tools/analyzers/lintutil"
)

const doc = `require cancellation to thread through library I/O paths

Exported I/O paths accept and thread a context.Context; library code
never creates its own root context (context.Background/TODO), and a
declared ctx parameter must actually be used.`

var Analyzer = &analysis.Analyzer{
	Name: "ctxio",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	isMain := lintutil.IsMainPackage(pass)
	for _, f := range pass.Files {
		if !isMain {
			checkBackground(pass, f)
		}
		checkDropped(pass, f)
	}
	return nil, nil
}

// checkBackground flags context.Background() and context.TODO() calls.
func checkBackground(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return true
		}
		lintutil.Report(pass, "ctxio", call,
			"context.%s in library code detaches the operation from the caller's cancellation: thread the caller's ctx", sel.Sel.Name)
		return true
	})
}

// checkDropped flags exported functions whose context.Context parameter
// is never referenced in the body.
func checkDropped(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		for _, field := range fd.Type.Params.List {
			if !isContextType(pass, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					lintutil.Report(pass, "ctxio", name,
						"%s discards its context.Context parameter: thread it to the I/O or drop it from the signature", fd.Name.Name)
					continue
				}
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if !usedIn(pass, fd.Body, obj) {
					lintutil.Report(pass, "ctxio", name,
						"%s accepts ctx but never uses it: the signature promises cancelability the body doesn't deliver", fd.Name.Name)
				}
			}
		}
	}
}

// isContextType reports whether the parameter type is context.Context.
func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usedIn reports whether obj is referenced anywhere in body.
func usedIn(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
