package ctxio_test

import (
	"testing"

	"repro/tools/analyzers/ctxio"
	"repro/tools/analyzers/internal/analyzertest"
)

func Test(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), ctxio.Analyzer, "c", "cmain")
}
