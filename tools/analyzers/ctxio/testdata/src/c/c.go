// Package c is library code: it may not mint its own root contexts, and
// an exported function that accepts a ctx must actually thread it.
package c

import "context"

func Root() context.Context {
	return context.Background() // want "context.Background in library code"
}

func Todo() context.Context {
	return context.TODO() // want "context.TODO in library code"
}

func JobRoot() context.Context {
	//lint:allow ctxio -- job-lifetime root for the golden test
	return context.Background()
}

func Dropped(ctx context.Context) error { // want "Dropped accepts ctx but never uses it"
	return nil
}

func Discarded(_ context.Context) error { // want "Discarded discards its context.Context parameter"
	return nil
}

func Threaded(ctx context.Context) error {
	return ctx.Err() // ok: the ctx reaches the work
}

func helper(ctx context.Context) error { // ok: unexported helpers are the caller's business
	return nil
}
