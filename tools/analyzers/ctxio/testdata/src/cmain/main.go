// Command cmain stands in for a CLI: main is the root of the context
// tree, so Background() is exactly right here — but a declared ctx
// parameter still has to be used.
package main

import "context"

func main() {
	ctx := context.Background() // ok: commands own the root context
	_ = run(ctx)
}

func run(ctx context.Context) error {
	return ctx.Err()
}

func Run(ctx context.Context) error { // want "Run accepts ctx but never uses it"
	return nil
}
