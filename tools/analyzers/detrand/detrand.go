// Package detrand pins the repo's determinism contract (DESIGN.md): every
// random choice the library makes is drawn from a *rand.Rand the caller
// seeds, and the deterministic packages — the engines, the GF(2) planning
// stack, and the chaos wrappers whose fault decisions must be pure hashes
// of (seed, kind, disk, block, visit) — never read the wall clock. A
// single time.Now or global math/rand call in those paths silently breaks
// chaos-schedule replay and the byte-identical I/O accounting the paper's
// bounds comparisons depend on.
//
// Three rules, in decreasing scope:
//
//  1. Global math/rand state (rand.Intn, rand.Shuffle, rand.Seed, ...) is
//     forbidden everywhere — library and commands alike. Use
//     bmmc.NewRand(seed) or a locally owned rand.New(rand.NewSource(s)).
//  2. Seeding a source from the clock (rand.NewSource(time.Now()...) and
//     friends) is forbidden in commands and in deterministic packages:
//     examples and CLIs must route seeds through their -seed flag.
//  3. time.Now (and time.Since/time.Until, which call it) is forbidden in
//     the deterministic packages (-detpkgs), except in files on the
//     measurement allowlist (-allowfiles): latency instrumentation sites
//     observe a run without influencing it.
package detrand

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/tools/analyzers/lintutil"
)

const doc = `forbid wall-clock and global-rand nondeterminism in deterministic packages

Deterministic packages (engines, planning, chaos wrappers) must derive
every random choice from a caller-seeded source and must never read the
clock; global math/rand state is forbidden repo-wide.`

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  doc,
	Run:  run,
}

var (
	detpkgs    string
	allowfiles string
)

func init() {
	Analyzer.Flags.StringVar(&detpkgs, "detpkgs",
		"repro/internal/engine,repro/internal/perm,repro/internal/factor,repro/internal/gf2,repro/internal/pdm,repro/internal/core,repro/internal/detect,repro/internal/bounds,repro/backendtest/chaos",
		"comma-separated anchored regexps of deterministic package paths")
	Analyzer.Flags.StringVar(&allowfiles, "allowfiles",
		"instrument.go",
		"comma-separated file basenames where time.Now is measurement, not logic")
}

// globalRandFuncs are the math/rand package-level functions that touch the
// shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) (any, error) {
	deterministic := lintutil.PathMatches(pass.Pkg.Path(), detpkgs)
	seedScoped := deterministic || lintutil.IsMainPackage(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calleePkgFunc(pass, call)
			switch {
			case pkg == "math/rand" && globalRandFuncs[name]:
				lintutil.Report(pass, "detrand", call,
					"global math/rand state (rand.%s): draw from a caller-seeded *rand.Rand (bmmc.NewRand) instead", name)
			case pkg == "math/rand" && (name == "NewSource" || name == "New") && seedScoped && readsClock(pass, call):
				lintutil.Report(pass, "detrand", call,
					"rand source seeded from the clock: route the seed through -seed / bmmc.NewRand so runs replay")
			case pkg == "time" && clockFuncs[name] && deterministic &&
				!lintutil.InFiles(pass, call.Pos(), allowfiles):
				lintutil.Report(pass, "detrand", call,
					"time.%s in deterministic package %s: fault and planning decisions must be pure functions of the seed", name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}

// calleePkgFunc resolves a call's callee to (package path, function name)
// when it is a direct package-level function call like rand.Intn(...).
func calleePkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// readsClock reports whether any call to time.Now/Since/Until appears in
// the argument tree of call (e.g. rand.NewSource(time.Now().UnixNano())).
func readsClock(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name := calleePkgFunc(pass, c); pkg == "time" && clockFuncs[name] {
				found = true
			}
			return !found
		})
	}
	return found
}
