package detrand_test

import (
	"testing"

	"repro/tools/analyzers/detrand"
	"repro/tools/analyzers/internal/analyzertest"
)

func Test(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), detrand.Analyzer,
		"a", "repro/internal/engine", "seedmain")
}
