// Package a is an ordinary library package: neither a command nor on the
// deterministic-package list. Global math/rand state is still forbidden,
// but clock reads and clock-seeded local sources are its own business.
package a

import (
	"math/rand"
	"time"
)

func Jitter() int64 {
	return rand.Int63n(10) // want "global math/rand state"
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand state"
}

func Local(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed)) // ok: caller-seeded local source
	return rng.Int63n(10)
}

func ClockSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // ok: not a command, not a deterministic package
}

func Stamp() time.Time {
	return time.Now() // ok: not a deterministic package
}
