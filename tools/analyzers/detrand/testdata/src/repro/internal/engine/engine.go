// Package engine stands in for a deterministic package (-detpkgs): every
// random choice must come from a caller-seeded source and the wall clock
// is off limits outside the measurement allowlist.
package engine

import (
	"math/rand"
	"time"
)

func Plan(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed)) // ok: caller-seeded
	return rng.Int63()
}

func Stamp() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package"
}

func ClockSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want "rand source seeded from the clock" "time.Now in deterministic package"
}

func Suppressed() time.Time {
	//lint:allow detrand -- golden test for the suppression mechanism
	return time.Now()
}
