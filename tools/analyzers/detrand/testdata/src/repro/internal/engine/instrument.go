package engine

import "time"

// Observe reads the clock legally: instrument.go is on the -allowfiles
// measurement allowlist, where latency observation does not influence any
// planning or fault decision.
func Observe(t0 time.Time) time.Duration {
	return time.Since(t0) // ok: measurement site
}
