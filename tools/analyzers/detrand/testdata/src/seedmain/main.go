// Command seedmain stands in for a CLI: clock reads are fine (commands
// are not deterministic packages) but seeding a rand source from the
// clock is not — seeds must route through a -seed flag so runs replay.
package main

import (
	"math/rand"
	"time"
)

func main() {
	_ = rand.NewSource(time.Now().UnixNano()) // want "rand source seeded from the clock"
	_ = time.Now()                            // ok: commands may read the clock
	_ = rand.NewSource(42)                    // ok: fixed seed
}
