// Package errwrap pins the error-identity discipline: sentinel errors
// (ErrInjectedFault, ErrQueueFull, ...) travel through wrapped chains —
// the chaos wrappers wrap with %w, the service layer wraps with job
// context — so identity tests must use errors.Is. A literal == against a
// sentinel works today on the paths that happen not to wrap and silently
// stops matching the day someone adds context to the error, which is the
// worst kind of regression: the fault-handling branch just stops running.
//
// Three checks:
//
//  1. err == ErrX / err != ErrX where ErrX is a package-level error
//     variable named Err*: use errors.Is(err, ErrX).
//  2. switch err { case ErrX: } with the same operands: same fix.
//  3. fmt.Errorf("...: %v", err) where the error is the final argument
//     and the final verb is %v or %s: wrap with %w so the chain keeps
//     errors.Is working downstream.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/tools/analyzers/lintutil"
)

const doc = `require errors.Is for sentinel tests and %w for wrapping

Sentinels cross wrapped chains; == comparisons and %v wrapping both break
errors.Is the moment a layer adds context.`

var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkComparison flags ==/!= where one side is an error value and the
// other names a package-level Err* sentinel variable.
func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	var sentinel string
	switch {
	case isSentinel(pass, be.X) != "" && isErrorExpr(pass, be.Y):
		sentinel = isSentinel(pass, be.X)
	case isSentinel(pass, be.Y) != "" && isErrorExpr(pass, be.X):
		sentinel = isSentinel(pass, be.Y)
	default:
		return
	}
	lintutil.Report(pass, "errwrap", be,
		"comparing against sentinel %s with %s breaks once the error is wrapped: use errors.Is", sentinel, be.Op)
}

// checkSwitch flags switch err { case ErrX: } over an error tag.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorExpr(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := isSentinel(pass, e); s != "" {
				lintutil.Report(pass, "errwrap", e,
					"switch case on sentinel %s breaks once the error is wrapped: use errors.Is", s)
			}
		}
	}
}

// isSentinel returns the name of the package-level Err* error variable e
// refers to, or "".
func isSentinel(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return ""
	}
	// Package-level: the var's parent scope is its package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !implementsError(v.Type()) {
		return ""
	}
	return v.Name()
}

// isErrorExpr reports whether e's static type is (or implements) error
// and e is not the nil literal.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && implementsError(t)
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// checkErrorf flags fmt.Errorf calls whose final argument is an error
// formatted with %v or %s — an unwrapped chain.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	last := call.Args[len(call.Args)-1]
	if !isErrorExpr(pass, last) {
		return
	}
	verbs := formatVerbs(format)
	// Only reason about the simple positional case: one verb per arg.
	if len(verbs) != len(call.Args)-1 {
		return
	}
	if v := verbs[len(verbs)-1]; v == 'v' || v == 's' {
		lintutil.Report(pass, "errwrap", call,
			"fmt.Errorf formats the error with %%%c, losing the chain: wrap with %%w so errors.Is keeps working", v)
	}
}

// formatVerbs returns the verb letters of format in order, or nil when
// the format uses indexed arguments (which this check doesn't model).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0.123456789", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '[':
			return nil // indexed argument; bail out
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
