package errwrap_test

import (
	"testing"

	"repro/tools/analyzers/errwrap"
	"repro/tools/analyzers/internal/analyzertest"
)

func Test(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), errwrap.Analyzer, "f")
}
