// Package f exercises the sentinel-identity discipline: errors.Is for
// tests, %w for wrapping.
package f

import (
	"errors"
	"fmt"
)

var ErrFault = errors.New("injected fault")

func Compare(err error) bool {
	return err == ErrFault // want "use errors.Is"
}

func CompareNeq(err error) bool {
	return ErrFault != err // want "use errors.Is"
}

func CompareOK(err error) bool {
	return errors.Is(err, ErrFault) // ok
}

func NilOK(err error) bool {
	return err == nil // ok: nil test, not a sentinel test
}

func Switch(err error) string {
	switch err {
	case ErrFault: // want "switch case on sentinel ErrFault"
		return "fault"
	}
	return ""
}

func Wrap(err error) error {
	return fmt.Errorf("load: %v", err) // want "losing the chain"
}

func WrapS(err error) error {
	return fmt.Errorf("load %d: %s", 3, err) // want "losing the chain"
}

func WrapOK(err error) error {
	return fmt.Errorf("load: %w", err) // ok
}

func NotLast(err error) error {
	return fmt.Errorf("load: %v (disk %d)", err, 3) // ok: the final verb is not the error
}

func Suppressed(err error) bool {
	//lint:allow errwrap -- golden test for the suppression mechanism
	return err == ErrFault
}
