// Package analyzertest is a self-contained stand-in for
// golang.org/x/tools/go/analysis/analysistest, built only on the standard
// library's go/parser + go/types + go/importer.
//
// The real analysistest depends on go/packages (and through it on
// external processes and module resolution); this repo vendors the
// analysis framework from the Go distribution's cmd/vendor tree, which
// deliberately excludes go/packages. The subset implemented here is what
// the bmmcvet suites need: GOPATH-style testdata layout, recursive
// loading of testdata-local imports, analyzer Requires, and analysistest's
// "// want" comment contract — a diagnostic must match a want regexp on
// its line, every want must be matched, and anything else fails the test.
//
// Layout, identical to analysistest:
//
//	testdata/src/<import/path>/*.go
//
// Run(t, testdata, analyzer, "a", "repro/internal/pdm") analyzes the
// packages at testdata/src/a and testdata/src/repro/internal/pdm; imports
// of other testdata packages and of the standard library both resolve.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the abs path of the testdata directory next to the
// caller's test file, mirroring analysistest.TestData.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// loader typechecks testdata packages on demand, resolving imports first
// against testdata/src and then against the installed standard library.
type loader struct {
	fset    *token.FileSet
	srcdir  string
	std     types.Importer
	pkgs    map[string]*loadedPkg
	loading map[string]bool
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(fset *token.FileSet, testdata string) *loader {
	return &loader{
		fset:    fset,
		srcdir:  filepath.Join(testdata, "src"),
		std:     importer.ForCompiler(fset, "gc", nil),
		pkgs:    make(map[string]*loadedPkg),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over testdata packages, falling back
// to the standard library for everything not present under testdata/src.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcdir, path); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// Run loads each named testdata package, applies a (running its Requires
// first), and checks the emitted diagnostics against the package's
// // want comments. It is the analysistest.Run of this harness.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	l := newLoader(fset, testdata)
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			t.Errorf("%s: loading %s: %v", a.Name, path, err)
			continue
		}
		diags, err := run(a, fset, p, make(map[*analysis.Analyzer]any))
		if err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, a.Name, fset, p.files, diags)
	}
}

// run executes a and (recursively, first) its Requires on one package,
// returning the diagnostics a reported.
func run(a *analysis.Analyzer, fset *token.FileSet, p *loadedPkg, results map[*analysis.Analyzer]any) ([]analysis.Diagnostic, error) {
	resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
	for _, dep := range a.Requires {
		if _, ok := results[dep]; !ok {
			if _, err := run(dep, fset, p, results); err != nil {
				return nil, fmt.Errorf("dependency %s: %w", dep.Name, err)
			}
		}
		resultOf[dep] = results[dep]
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      p.files,
		Pkg:        p.pkg,
		TypesInfo:  p.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   resultOf,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return diags, nil
}

// wantRe is one expectation: a compiled regexp from a // want comment,
// plus whether a diagnostic already matched it.
type wantRe struct {
	re      *regexp.Regexp
	raw     string
	line    int
	file    string
	matched bool
}

var wantComment = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// checkWants enforces the analysistest contract between diags and the
// // want comments of files.
func checkWants(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	// Collect expectations keyed by (file, line).
	wants := make(map[string][]*wantRe)
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Errorf("%s: %s: bad want pattern %s: %v", name, pos, raw, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: %s: bad want regexp %q: %v", name, pos, pat, err)
						continue
					}
					k := key(pos.Filename, pos.Line)
					wants[k] = append(wants[k], &wantRe{re: re, raw: raw, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key(pos.Filename, pos.Line)
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s: unexpected diagnostic: %s", name, pos, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matched want %s", name, w.file, w.line, w.raw)
			}
		}
	}
}

// splitQuoted splits the payload of a want comment into its quoted
// patterns, honoring both "double" and `backquote` quoting.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
			}
			i = j + 1
		case '`':
			j := i + 1
			for j < len(s) && s[j] != '`' {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
			}
			i = j + 1
		default:
			i++
		}
	}
	return out
}
