// Package lintutil holds the plumbing shared by every bmmcvet analyzer:
// the //lint:allow suppression mechanism, test-file detection, and the
// package-path scoping helpers the analyzers use to decide which parts of
// the tree an invariant applies to.
//
// Suppression syntax (documented in DESIGN.md "Static analysis"):
//
//	//lint:allow <analyzer> -- <reason>
//
// placed either on the same line as the offending expression or on the
// line directly above it. The analyzer name must match exactly; the
// reason after "--" is mandatory by convention (the comment is for the
// next reader, not the tool) but not enforced mechanically.
package lintutil

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Suppressed reports whether a diagnostic of analyzer name at pos is
// silenced by a //lint:allow comment on the same line or the line above.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	file := fileFor(pass, pos)
	if file == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			allowed, ok := allowNames(c.Text)
			if !ok {
				continue
			}
			cline := pass.Fset.Position(c.Pos()).Line
			if cline != line && cline != line-1 {
				continue
			}
			for _, a := range allowed {
				if a == name {
					return true
				}
			}
		}
	}
	return false
}

// allowNames parses a "//lint:allow a b -- reason" comment, returning the
// analyzer names it suppresses.
func allowNames(text string) ([]string, bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := text[len(prefix):]
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	names := strings.Fields(rest)
	if len(names) == 0 {
		return nil, false
	}
	return names, true
}

// fileFor returns the *ast.File of pass containing pos.
func fileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos sits in a _test.go file. The bmmcvet
// analyzers enforce production invariants; tests deliberately poke
// internals (fixed fault schedules, raw backend access) and are exempt.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// InFiles reports whether pos sits in a file whose basename is listed in
// the comma-separated allowlist.
func InFiles(pass *analysis.Pass, pos token.Pos, list string) bool {
	base := filepath.Base(pass.Fset.Position(pos).Filename)
	for _, want := range strings.Split(list, ",") {
		if want = strings.TrimSpace(want); want != "" && want == base {
			return true
		}
	}
	return false
}

// PathMatches reports whether pkgPath matches any pattern in the
// comma-separated list. Each pattern is an anchored regular expression
// (implicit ^...$), so "repro/internal/perm" matches exactly that package
// and "repro/internal/pdm(/.*)?" matches the package and its subtree.
func PathMatches(pkgPath, patterns string) bool {
	for _, p := range strings.Split(patterns, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		re, err := regexp.Compile("^(?:" + p + ")$")
		if err != nil {
			continue
		}
		if re.MatchString(pkgPath) {
			return true
		}
	}
	return false
}

// Report files a diagnostic at node unless it is suppressed or in a test
// file. It is the single reporting path of every bmmcvet analyzer, so the
// suppression and test-exemption rules stay uniform across the suite.
func Report(pass *analysis.Pass, name string, node ast.Node, format string, args ...any) {
	if InTestFile(pass, node.Pos()) || Suppressed(pass, node.Pos(), name) {
		return
	}
	pass.Reportf(node.Pos(), format, args...)
}

// IsMainPackage reports whether the package under analysis is a command
// (package main). Several invariants scope differently there: a main
// package is the root of the context tree, but examples and CLIs must
// still seed randomness through the -seed / bmmc.NewRand path.
func IsMainPackage(pass *analysis.Pass) bool {
	return pass.Pkg.Name() == "main"
}
