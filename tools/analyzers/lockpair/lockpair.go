// Package lockpair pins the dataset locking discipline: AcquireRun (the
// exclusive run lock) and AcquireRead (the shared read lock) must be
// released on every path out of the function that took them. A leaked run
// lock deadlocks the next execution forever — the System deliberately has
// no timeout — and a mismatched pair (AcquireRun / ReleaseRead) corrupts
// the RWMutex state.
//
// The check accepts two shapes:
//
//  1. defer recv.ReleaseRun() (or a deferred closure that calls it) with
//     the same receiver expression, anywhere in the function — the
//     idiomatic form used throughout internal/core;
//  2. an explicit matching Release call on every control-flow path from
//     the acquire to the function's exit, verified on the go/cfg graph.
//
// Receivers are compared by printed expression (ds.sys against ds.sys),
// which is exact for the field-selector chains the repo uses.
package lockpair

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"repro/tools/analyzers/lintutil"
)

const doc = `require Acquire{Run,Read} to pair with Release on all paths

Every AcquireRun/AcquireRead must be followed by a defer of the matching
Release on the same receiver, or by a matching Release call on every
control-flow path to the function's exit.`

var Analyzer = &analysis.Analyzer{
	Name: "lockpair",
	Doc:  doc,
	Run:  run,
}

// pairs maps each acquire method to its required release.
var pairs = map[string]string{
	"AcquireRun":  "ReleaseRun",
	"AcquireRead": "ReleaseRead",
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// lockCall is one Acquire* call found in a function body.
type lockCall struct {
	call    *ast.CallExpr
	acquire string // method name
	recv    string // printed receiver expression
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var acquires []lockCall
	// Top-level walk: don't descend into func literals; they are their own
	// scope for pairing (a deferred closure releasing the outer lock is
	// handled by the defer check below, not by re-walking here).
	inspectSkipFuncLits(fd.Body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, recv, ok := methodOn(call); ok && pairs[name] != "" {
				acquires = append(acquires, lockCall{call, name, recv})
			}
		}
	})
	if len(acquires) == 0 {
		return
	}
	for _, a := range acquires {
		release := pairs[a.acquire]
		if hasDeferredRelease(fd.Body, release, a.recv) {
			continue
		}
		if releasedOnAllPaths(fd, a, release) {
			continue
		}
		lintutil.Report(pass, "lockpair", a.call,
			"%s on %s has no %s on some path out of %s: defer the release or release on every return",
			a.acquire, a.recv, release, fd.Name.Name)
	}
}

// inspectSkipFuncLits walks n's tree, calling fn on every node, but does
// not descend into function literals.
func inspectSkipFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// methodOn decomposes a call of the form recv.Name(...) into (Name,
// printed recv). Package-qualified calls are rejected by requiring the
// selector to have at least one non-package component — the printed form
// is still compared textually, so a false package match would simply
// never pair and be reported, which is safe.
func methodOn(call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	return sel.Sel.Name, exprString(sel.X), true
}

func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

// hasDeferredRelease reports whether body contains a defer that calls
// release on recv — either directly (defer recv.ReleaseRun()) or inside a
// deferred function literal.
func hasDeferredRelease(body *ast.BlockStmt, release, recv string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if callsRelease(def.Call, release, recv) {
			found = true
			return false
		}
		if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok && callsRelease(c, release, recv) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func callsRelease(call *ast.CallExpr, release, recv string) bool {
	name, r, ok := methodOn(call)
	return ok && name == release && r == recv
}

// releasedOnAllPaths builds the function's CFG and verifies that every
// path from the acquire reaches a matching release before the exit.
func releasedOnAllPaths(fd *ast.FuncDecl, a lockCall, release string) bool {
	g := cfg.New(fd.Body, func(*ast.CallExpr) bool { return true })
	// Locate the block and index holding the acquire call.
	var start *cfg.Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if containsNode(n, a.call) {
				start, startIdx = b, i
				break
			}
		}
		if start != nil {
			break
		}
	}
	if start == nil {
		return false // can't prove it; report
	}
	// A block "releases" if one of its nodes after fromIdx calls release.
	releasesFrom := func(b *cfg.Block, fromIdx int) bool {
		for _, n := range b.Nodes[fromIdx:] {
			ok := false
			ast.Inspect(n, func(m ast.Node) bool {
				if c, isCall := m.(*ast.CallExpr); isCall && callsRelease(c, release, a.recv) {
					ok = true
				}
				return !ok
			})
			if ok {
				return true
			}
		}
		return false
	}
	// DFS: from the acquire onward, every path to a block with no
	// successors (function exit) must pass a release.
	if releasesFrom(start, startIdx+1) {
		return true
	}
	seen := map[*cfg.Block]bool{}
	var leak func(b *cfg.Block) bool
	leak = func(b *cfg.Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if releasesFrom(b, 0) {
			return false
		}
		if len(b.Succs) == 0 {
			return b.Live // an unreachable empty exit block is not a leak
		}
		for _, s := range b.Succs {
			if leak(s) {
				return true
			}
		}
		return false
	}
	for _, s := range start.Succs {
		if leak(s) {
			return false
		}
	}
	return len(start.Succs) > 0 || !start.Live
}

// containsNode reports whether tree contains target.
func containsNode(tree ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(tree, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
