package lockpair_test

import (
	"testing"

	"repro/tools/analyzers/internal/analyzertest"
	"repro/tools/analyzers/lockpair"
)

func Test(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), lockpair.Analyzer, "e")
}
