// Package e exercises the Acquire/Release pairing discipline on a
// stand-in for pdm.System's run/read locks.
package e

import "errors"

type System struct{}

func (s *System) AcquireRun()  {}
func (s *System) ReleaseRun()  {}
func (s *System) AcquireRead() {}
func (s *System) ReleaseRead() {}

var errWork = errors.New("work failed")

func work() {}

func DeferOK(s *System) {
	s.AcquireRun()
	defer s.ReleaseRun()
	work()
}

func DeferClosureOK(s *System) {
	s.AcquireRead()
	defer func() {
		work()
		s.ReleaseRead()
	}()
	work()
}

func AllPathsOK(s *System, cond bool) {
	s.AcquireRead()
	if cond {
		work()
		s.ReleaseRead()
		return
	}
	s.ReleaseRead()
}

func Leak(s *System, cond bool) error {
	s.AcquireRun() // want "AcquireRun on s has no ReleaseRun"
	if cond {
		return errWork // leaks the run lock on this path
	}
	s.ReleaseRun()
	return nil
}

func Mismatch(s *System) {
	s.AcquireRun() // want "AcquireRun on s has no ReleaseRun"
	defer s.ReleaseRead()
	work()
}

func WrongReceiver(a, b *System) {
	a.AcquireRun() // want "AcquireRun on a has no ReleaseRun"
	defer b.ReleaseRun()
	work()
}

func Suppressed(s *System) {
	//lint:allow lockpair -- golden test for the suppression mechanism
	s.AcquireRun()
}
