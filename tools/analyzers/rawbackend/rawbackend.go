// Package rawbackend pins the I/O-accounting integrity invariant: every
// block transfer must route through pdm.System (which validates the
// one-block-per-disk discipline and counts the parallel I/O) or through
// pdm.InstrumentBackend. A raw Backend.ReadBlocks/WriteBlocks or
// RangeBackend.ReadBlockRanges/WriteBlockRanges call anywhere else moves
// records the model never counts — and from that moment the Theorem 3/21
// bounds comparisons exported on /metrics silently lie.
//
// The backend conformance harness (repro/backendtest) is the one
// principled exception: its whole purpose is to exercise Backend
// implementations directly, below the accounting layer, so it sits on the
// -allowpkgs list.
package rawbackend

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/tools/analyzers/lintutil"
)

const doc = `forbid raw Backend transfer calls outside the accounting layer

ReadBlocks/WriteBlocks/ReadBlockRanges/WriteBlockRanges move records the
cost model must count; only pdm.System and pdm.InstrumentBackend may call
them. Everything else goes through the System so /metrics stays honest.`

var Analyzer = &analysis.Analyzer{
	Name: "rawbackend",
	Doc:  doc,
	Run:  run,
}

var (
	backendpkgs string
	allowpkgs   string
)

func init() {
	Analyzer.Flags.StringVar(&backendpkgs, "backendpkgs",
		"repro/internal/pdm,repro",
		"comma-separated anchored regexps of packages whose transfer methods are accounting-protected")
	Analyzer.Flags.StringVar(&allowpkgs, "allowpkgs",
		"repro/internal/pdm,repro/backendtest(/.*)?",
		"comma-separated anchored regexps of packages allowed to call transfer methods directly")
}

// xferMethods are the Backend/RangeBackend methods that move records.
var xferMethods = map[string]bool{
	"ReadBlocks": true, "WriteBlocks": true,
	"ReadBlockRanges": true, "WriteBlockRanges": true,
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.PathMatches(pass.Pkg.Path(), allowpkgs) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !xferMethods[sel.Sel.Name] {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok {
				return true // package-qualified call, not a method
			}
			fn, ok := selection.Obj().(*types.Func)
			if !ok {
				return true
			}
			if !fromBackendPkg(fn) && !recvFromBackendPkg(selection.Recv()) {
				return true
			}
			lintutil.Report(pass, "rawbackend", call,
				"raw backend transfer %s bypasses pdm.System's I/O accounting: route through System (or InstrumentBackend)", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}

// fromBackendPkg reports whether the method's declaring package is one of
// the accounting-protected packages.
func fromBackendPkg(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	return lintutil.PathMatches(fn.Pkg().Path(), backendpkgs)
}

// recvFromBackendPkg handles receivers whose *named type* comes from a
// protected package even when the method set entry resolves elsewhere
// (embedding, interface aliases like the root package's Backend = pdm.Backend).
func recvFromBackendPkg(recv types.Type) bool {
	for {
		switch t := recv.(type) {
		case *types.Pointer:
			recv = t.Elem()
		case *types.Named:
			if obj := t.Obj(); obj != nil && obj.Pkg() != nil &&
				lintutil.PathMatches(obj.Pkg().Path(), backendpkgs) {
				return true
			}
			recv = t.Underlying()
		case *types.Alias:
			recv = types.Unalias(t)
		default:
			return false
		}
		if _, ok := recv.(*types.Interface); ok {
			return false
		}
		if _, ok := recv.(*types.Struct); ok {
			return false
		}
	}
}
