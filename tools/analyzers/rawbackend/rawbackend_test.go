package rawbackend_test

import (
	"testing"

	"repro/tools/analyzers/internal/analyzertest"
	"repro/tools/analyzers/rawbackend"
)

func Test(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), rawbackend.Analyzer,
		"b", "repro/internal/pdm", "repro/backendtest")
}
