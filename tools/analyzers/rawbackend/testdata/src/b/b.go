// Package b is ordinary library code: every block transfer must route
// through the System so the I/O accounting stays honest.
package b

import "repro/internal/pdm"

func Leak(be pdm.Backend) error {
	return be.ReadBlocks(0, nil) // want "raw backend transfer ReadBlocks bypasses"
}

func LeakWrite(s *pdm.System) error {
	return s.B.WriteBlocks(0, nil) // want "raw backend transfer WriteBlocks bypasses"
}

func Routed(s *pdm.System, disk int, blocks []int) error {
	return s.Load(disk, blocks) // ok: routed through the accounting layer
}

type local struct{}

func (local) ReadBlocks(int, []int) error { return nil }

func Unrelated(l local) error {
	return l.ReadBlocks(0, nil) // ok: same method name on a non-backend type
}

func Suppressed(be pdm.Backend) error {
	//lint:allow rawbackend -- golden test for the suppression mechanism
	return be.ReadBlocks(0, nil)
}
