// Package backendtest stands in for the conformance harness: its whole
// purpose is to exercise Backend implementations below the accounting
// layer, so it sits on the -allowpkgs list.
package backendtest

import "repro/internal/pdm"

func Exercise(be pdm.Backend) error {
	return be.ReadBlocks(0, nil) // ok: conformance harness is allowlisted
}
