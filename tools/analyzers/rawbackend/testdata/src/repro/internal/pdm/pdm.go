// Package pdm mirrors the real accounting layer's transfer surface: the
// Backend interface whose raw methods move records, and the System that
// is allowed to call them because it counts the parallel I/Os.
package pdm

type Backend interface {
	ReadBlocks(disk int, blocks []int) error
	WriteBlocks(disk int, blocks []int) error
}

type System struct {
	B Backend
}

func (s *System) Load(disk int, blocks []int) error {
	return s.B.ReadBlocks(disk, blocks) // ok: pdm is the accounting layer
}

func (s *System) Store(disk int, blocks []int) error {
	return s.B.WriteBlocks(disk, blocks) // ok: pdm is the accounting layer
}
