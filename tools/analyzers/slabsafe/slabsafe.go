// Package slabsafe confines unsafe to the two places the zero-copy record
// path earned it: the slab-view reinterpretation in
// internal/pdm/records_slab.go and the build-tagged mmap file backend.
// Everywhere else, []Record moves through the typed copy paths — a new
// unsafe.Pointer cast outside the allowlist reopens exactly the class of
// aliasing bugs the slab tests were written to pin down.
package slabsafe

import (
	"strconv"

	"golang.org/x/tools/go/analysis"

	"repro/tools/analyzers/lintutil"
)

const doc = `confine unsafe to the audited slab-view and mmap files

The zero-copy record path concentrates its unsafe.Pointer casts in
records_slab.go and the build-tagged mmap backend; importing unsafe
anywhere else needs a new audit, not a new call site.`

var Analyzer = &analysis.Analyzer{
	Name: "slabsafe",
	Doc:  doc,
	Run:  run,
}

var allowfiles string

func init() {
	Analyzer.Flags.StringVar(&allowfiles, "allowfiles",
		"records_slab.go,filedisk_mmap.go",
		"comma-separated file basenames allowed to import unsafe")
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "unsafe" {
				continue
			}
			if lintutil.InFiles(pass, imp.Pos(), allowfiles) {
				continue
			}
			lintutil.Report(pass, "slabsafe", imp,
				"unsafe outside the audited slab/mmap files: keep unsafe.Pointer casts in %s", allowfiles)
		}
	}
	return nil, nil
}
