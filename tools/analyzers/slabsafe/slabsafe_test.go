package slabsafe_test

import (
	"testing"

	"repro/tools/analyzers/internal/analyzertest"
	"repro/tools/analyzers/slabsafe"
)

func Test(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), slabsafe.Analyzer, "d")
}
