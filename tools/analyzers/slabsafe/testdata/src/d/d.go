// Package d imports unsafe from an ordinary file, which reopens the
// aliasing-bug class the slab tests pinned down.
package d

import "unsafe" // want "unsafe outside the audited slab/mmap files"

func Size() uintptr {
	var x int
	return unsafe.Sizeof(x)
}
