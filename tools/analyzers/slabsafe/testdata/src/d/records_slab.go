package d

import "unsafe"

// View lives in records_slab.go, the audited home of the zero-copy
// reinterpretation — the file is on the -allowfiles list.
func View(p *byte) unsafe.Pointer {
	return unsafe.Pointer(p) // ok: allowlisted file
}
