package d

//lint:allow slabsafe -- golden test for the suppression mechanism
import "unsafe"

func Align() uintptr {
	var x int64
	return unsafe.Alignof(x)
}
