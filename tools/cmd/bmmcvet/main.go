// Command bmmcvet is the repo's custom static-analysis suite: six
// go/analysis analyzers that mechanically enforce the correctness
// invariants the type system can't see — the determinism contract, the
// parallel-I/O accounting integrity, context threading, unsafe
// confinement, lock pairing, and sentinel-error discipline. DESIGN.md
// "Static analysis" maps each analyzer to the invariant it pins.
//
// Run it the way CI does, as a vet tool over the whole tree:
//
//	cd tools && go build -mod=vendor -o ../bin/bmmcvet ./cmd/bmmcvet
//	go vet -vettool=$PWD/bin/bmmcvet ./...
//
// Suppress a diagnostic with an annotation on the same line or the line
// above, always with a reason:
//
//	//lint:allow <analyzer> -- <why this site is exempt>
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/tools/analyzers/ctxio"
	"repro/tools/analyzers/detrand"
	"repro/tools/analyzers/errwrap"
	"repro/tools/analyzers/lockpair"
	"repro/tools/analyzers/rawbackend"
	"repro/tools/analyzers/slabsafe"
)

func main() {
	unitchecker.Main(
		detrand.Analyzer,
		rawbackend.Analyzer,
		ctxio.Analyzer,
		slabsafe.Analyzer,
		lockpair.Analyzer,
		errwrap.Analyzer,
	)
}
